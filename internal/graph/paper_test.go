package graph

import "testing"

func TestTheoremOneChain(t *testing.T) {
	g := TheoremOneChain()
	if g.N() != 5 || g.M() != 4 || g.MaxDegree() != 2 {
		t.Fatal("Theorem 1 chain malformed")
	}
	s := TheoremOneStitched()
	if s.N() != 7 || s.M() != 6 {
		t.Fatal("Theorem 1 stitched chain malformed")
	}
}

func TestTheoremOneSpider(t *testing.T) {
	for delta := 2; delta <= 5; delta++ {
		g := TheoremOneSpider(delta)
		if g.N() != delta*delta+1 {
			t.Fatalf("Δ=%d: n=%d want %d", delta, g.N(), delta*delta+1)
		}
		if g.MaxDegree() != delta {
			t.Fatalf("Δ=%d: max degree %d", delta, g.MaxDegree())
		}
		// Center has degree Δ; middle nodes degree Δ; leaves degree 1.
		if g.Degree(0) != delta {
			t.Fatalf("center degree %d", g.Degree(0))
		}
		for mid := 1; mid <= delta; mid++ {
			if g.Degree(mid) != delta {
				t.Fatalf("middle node %d degree %d", mid, g.Degree(mid))
			}
		}
		for leaf := delta + 1; leaf < g.N(); leaf++ {
			if g.Degree(leaf) != 1 {
				t.Fatalf("leaf %d degree %d", leaf, g.Degree(leaf))
			}
		}
		if !g.IsConnected() {
			t.Fatal("spider disconnected")
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("TheoremOneSpider(1) did not panic")
		}
	}()
	TheoremOneSpider(1)
}

func TestTheoremTwoNetwork(t *testing.T) {
	rd := TheoremTwoNetwork()
	g, o := rd.Graph, rd.Orientation
	if g.N() != 6 || g.M() != 6 || g.MaxDegree() != 2 {
		t.Fatal("Theorem 2 network malformed")
	}
	// Γ(p2) = {p1, p5}: ids {0, 4} for id 1.
	nb := g.Neighbors(1)
	got := map[int]bool{nb[0]: true, nb[1]: true}
	if !got[0] || !got[4] {
		t.Fatalf("Γ(p2) = %v, want {p1,p5}", nb)
	}
	if !o.IsAcyclic() {
		t.Fatal("Theorem 2 orientation not a dag")
	}
	// p1 (0) and p4 (3) are sources; p5 (4) and p6 (5) are sinks.
	if !o.IsSource(0) || !o.IsSource(3) {
		t.Fatal("p1/p4 not sources")
	}
	if !o.IsSink(4) || !o.IsSink(5) {
		t.Fatal("p5/p6 not sinks")
	}
	if rd.Root != 0 {
		t.Fatal("root is not p1")
	}
	// p6's two incident edges both point into p6 ("the orientation is the
	// same of each of its two neighbors").
	if len(o.Pred(5)) != 2 {
		t.Fatalf("p6 preds = %v", o.Pred(5))
	}
}

func TestTheoremTwoGeneralized(t *testing.T) {
	for delta := 2; delta <= 4; delta++ {
		rd := TheoremTwoGeneralized(delta)
		g, o := rd.Graph, rd.Orientation
		if g.MaxDegree() != delta {
			t.Fatalf("Δ=%d: max degree %d", delta, g.MaxDegree())
		}
		if g.N() != 6+6*(delta-2) {
			t.Fatalf("Δ=%d: n=%d", delta, g.N())
		}
		if !o.IsAcyclic() {
			t.Fatalf("Δ=%d: orientation cyclic", delta)
		}
		if !o.IsSource(0) || !o.IsSource(3) || !o.IsSink(4) || !o.IsSink(5) {
			t.Fatalf("Δ=%d: source/sink structure broken", delta)
		}
		// All six core processes now have degree Δ.
		for p := 0; p < 6; p++ {
			if g.Degree(p) != delta {
				t.Fatalf("Δ=%d: core %d degree %d", delta, p, g.Degree(p))
			}
		}
	}
}

func TestFigureNinePath(t *testing.T) {
	g := FigureNinePath(7)
	if g.N() != 7 || g.M() != 6 {
		t.Fatal("Figure 9 path malformed")
	}
	lmax, err := g.LongestPathExact(24)
	if err != nil || lmax != 6 {
		t.Fatalf("Figure 9 Lmax = %d (%v), want 6", lmax, err)
	}
}

func TestFigureElevenNetwork(t *testing.T) {
	g := FigureElevenNetwork()
	if g.M() != 14 {
		t.Fatalf("Figure 11: m=%d want 14", g.M())
	}
	if g.MaxDegree() != 4 {
		t.Fatalf("Figure 11: Δ=%d want 4", g.MaxDegree())
	}
	if !g.IsConnected() {
		t.Fatal("Figure 11 network disconnected")
	}
	// {0-1, 2-3} is a maximal matching of size 2 = ⌈m/(2Δ-1)⌉:
	// every edge must be incident to one of {0,1,2,3}.
	matched := map[int]bool{0: true, 1: true, 2: true, 3: true}
	for _, e := range g.Edges() {
		if !matched[e[0]] && !matched[e[1]] {
			t.Fatalf("edge %v avoids the canonical matching; {0-1,2-3} not maximal", e)
		}
	}
	// The four endpoints have degree exactly Δ = 4 (tightness).
	for p := 0; p < 4; p++ {
		if g.Degree(p) != 4 {
			t.Fatalf("matched endpoint %d has degree %d", p, g.Degree(p))
		}
	}
}
