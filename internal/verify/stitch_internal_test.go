package verify

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/model"
	"repro/internal/protocols/coloring"
	"repro/internal/protocols/frozen"
)

// gamma5 builds a frozen-coloring configuration on the 5-chain.
func gamma5(t *testing.T, colors, curs []int) *model.Config {
	t.Helper()
	g := graph.TheoremOneChain()
	sys, err := model.NewSystem(g, frozen.ColoringSpec(), nil)
	if err != nil {
		t.Fatal(err)
	}
	cfg := model.NewZeroConfig(sys)
	for p, c := range colors {
		cfg.Comm[p][coloring.VarC] = c
	}
	for p, cur := range curs {
		cfg.Internal[p][coloring.VarCur] = cur
	}
	silent, err := model.CommSilent(sys, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !silent {
		t.Fatalf("handmade source configuration not silent: colors=%v curs=%v", colors, curs)
	}
	return cfg
}

// TestBuildDirect5 exercises the Figure 1 (d) construction with
// deterministic handmade sources (the search procedure may land on
// either case depending on the seed, so both builders are pinned here).
func TestBuildDirect5(t *testing.T) {
	// γA: p3 (id 2) rests on its left neighbor; its color is 0.
	gammaA := gamma5(t, []int{0, 1, 0, 1, 0}, []int{0, 0, 0, 0, 0})
	// γB: p4 (id 3) has color 0 = α3 and rests on its right neighbor.
	gammaB := gamma5(t, []int{0, 1, 2, 0, 1}, []int{0, 0, 0, 1, 0})

	demo, err := buildDirect5(gammaA, gammaB)
	if err != nil {
		t.Fatal(err)
	}
	out, err := demo.Check(5, 200000)
	if err != nil {
		t.Fatal(err)
	}
	if !out.FrozenImpossible {
		t.Fatal("direct-5 stitch did not witness the impossibility")
	}
	if out.RealSilent || !out.RealRecovers {
		t.Fatal("real protocol did not escape the direct-5 stitch")
	}
	if demo.Config.Comm[2][coloring.VarC] != demo.Config.Comm[3][coloring.VarC] {
		t.Fatal("seam is not monochromatic")
	}
}

// TestBuildMirror7 exercises the Figure 1 (c) construction: γB's p4
// rests on its LEFT neighbor, so the second half must be mirrored onto a
// 7-chain with the interior ports swapped.
func TestBuildMirror7(t *testing.T) {
	gammaA := gamma5(t, []int{0, 1, 0, 1, 0}, []int{0, 0, 0, 0, 0})
	// γB: p4 (id 3) has color 0 = α3 and rests on its LEFT neighbor
	// (id 2, color 2): the pj = p5 case of the proof.
	gammaB := gamma5(t, []int{0, 1, 2, 0, 1}, []int{0, 0, 0, 0, 0})

	demo, err := buildMirror7(gammaA, gammaB)
	if err != nil {
		t.Fatal(err)
	}
	if demo.Frozen.Graph().N() != 7 {
		t.Fatal("mirror stitch must live on the 7-chain")
	}
	out, err := demo.Check(7, 200000)
	if err != nil {
		t.Fatal(err)
	}
	if !out.FrozenImpossible {
		t.Fatal("mirror-7 stitch did not witness the impossibility")
	}
	if out.RealSilent || !out.RealRecovers {
		t.Fatal("real protocol did not escape the mirror-7 stitch")
	}
	// The mirrored processes must still look away from the seam: p'4
	// (id 3) took γB's p4 with its port swapped to the right.
	if demo.Config.Internal[3][coloring.VarCur] != 1 {
		t.Fatalf("p'4 cur = %d, want mirrored port 1 (right)", demo.Config.Internal[3][coloring.VarCur])
	}
}
