package verify

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/model"
	"repro/internal/protocols/coloring"
	"repro/internal/protocols/frozen"
	"repro/internal/protocols/matching"
	"repro/internal/protocols/mis"
)

func checkDemo(t *testing.T, d *Demo) Outcome {
	t.Helper()
	out, err := d.Check(1234, 400000)
	if err != nil {
		t.Fatalf("%s: %v", d.Name, err)
	}
	if !out.FrozenSilent {
		t.Errorf("%s: stitched configuration is not silent under the frozen protocol", d.Name)
	}
	if !out.Illegitimate {
		t.Errorf("%s: stitched configuration does not violate the predicate", d.Name)
	}
	if !out.FrozenImpossible {
		t.Errorf("%s: impossibility not witnessed", d.Name)
	}
	if out.RealSilent {
		t.Errorf("%s: real protocol is silent on the stitched configuration; the scan should detect the seam", d.Name)
	}
	if !out.RealRecovers {
		t.Errorf("%s: real protocol did not recover from the stitched configuration", d.Name)
	}
	return out
}

func TestHandcraftedDemos(t *testing.T) {
	demos, err := AllHandcrafted()
	if err != nil {
		t.Fatal(err)
	}
	if len(demos) < 8 {
		t.Fatalf("expected at least 8 handcrafted demos, got %d", len(demos))
	}
	for _, d := range demos {
		checkDemo(t, d)
	}
}

func TestSeamIsAdjacentAndConflicting(t *testing.T) {
	demos, err := AllHandcrafted()
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range demos {
		if d.Frozen.Graph().PortOf(d.SeamP, d.SeamQ) == 0 {
			t.Errorf("%s: seam processes %d,%d not adjacent", d.Name, d.SeamP, d.SeamQ)
		}
	}
}

func TestStitchSearchColoring(t *testing.T) {
	demo, tr, err := StitchSearchColoring(9000)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Case != "direct-5" && tr.Case != "mirror-7" {
		t.Fatalf("unexpected stitch case %q", tr.Case)
	}
	// The harvested sources must themselves be silent under the frozen
	// protocol.
	chain := graph.TheoremOneChain()
	fsys := demo.Frozen
	if tr.Case == "mirror-7" {
		var err2 error
		fsys, err2 = model.NewSystem(chain, demo.Frozen.Spec(), nil)
		if err2 != nil {
			t.Fatal(err2)
		}
	}
	for name, g := range map[string]*model.Config{"γA": tr.GammaA, "γB": tr.GammaB} {
		silent, err := model.CommSilent(fsys, g)
		if err != nil || !silent {
			t.Fatalf("source %s not silent: %v %v", name, silent, err)
		}
	}
	checkDemo(t, demo)
}

func TestStitchSearchTheorem2(t *testing.T) {
	demo, tr, err := StitchSearchTheorem2Coloring(11000)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Case != "theorem2" {
		t.Fatalf("unexpected case %q", tr.Case)
	}
	checkDemo(t, demo)
	// The seam is the p2-p5 edge of Figure 3, and both carry the same
	// color in the stitched configuration.
	if demo.Config.Comm[1][coloring.VarC] != demo.Config.Comm[4][coloring.VarC] {
		t.Fatal("seam processes do not share a color")
	}
}

func TestFindSilentConfigRejects(t *testing.T) {
	g := graph.TheoremOneChain()
	sys, err := model.NewSystem(g, coloring.Spec(), nil)
	if err != nil {
		t.Fatal(err)
	}
	// Impossible acceptance condition: exhausts attempts.
	_, _, err = FindSilentConfig(sys, func(*model.Config) bool { return false }, 1, 3, 5000)
	if err == nil {
		t.Fatal("impossible acceptance condition did not error")
	}
}

func TestNCWitnessColoring(t *testing.T) {
	g := graph.Cycle(6)
	sys, err := model.NewSystem(g, coloring.Spec(), nil)
	if err != nil {
		t.Fatal(err)
	}
	w, err := FindNCWitness(sys, coloring.IsLegitimate, 0, 1,
		func(a, b []int) bool { return a[coloring.VarC] == b[coloring.VarC] },
		500, 200, 100000)
	if err != nil {
		t.Fatal(err)
	}
	if w.AlphaP[coloring.VarC] != w.AlphaQ[coloring.VarC] {
		t.Fatal("witness states do not conflict")
	}
	// Both source configurations are silent (condition 2b).
	for _, gcfg := range []*model.Config{w.GammaP, w.GammaQ} {
		silent, err := model.CommSilent(sys, gcfg)
		if err != nil || !silent {
			t.Fatalf("witness source configuration not silent: %v %v", silent, err)
		}
	}
}

func TestMISSilentConfigurationUnique(t *testing.T) {
	// With fixed local identifiers, the silent configuration of the real
	// MIS protocol is unique: p is a Dominator iff no smaller-colored
	// neighbor is (induction over color ranks). This is why no
	// neighbor-completeness witness can be harvested from the protocol's
	// own silent configurations on one colored system — the local
	// identifiers are exactly what lets MIS evade the anonymous-network
	// impossibility of Theorem 1.
	g := graph.Path(6)
	colors := graph.GreedyLocalColoring(g)
	sys, err := mis.NewSystem(g, mis.Spec(g.MaxDegree()+1), colors)
	if err != nil {
		t.Fatal(err)
	}
	var first []int
	for seed := uint64(0); seed < 20; seed++ {
		cfg, _, err := FindSilentConfig(sys, func(*model.Config) bool { return true },
			seed*31+1, 5, 100000)
		if err != nil {
			t.Fatal(err)
		}
		s := make([]int, g.N())
		for p := 0; p < g.N(); p++ {
			s[p] = cfg.Comm[p][mis.VarS]
		}
		if first == nil {
			first = s
			continue
		}
		for p := range s {
			if s[p] != first[p] {
				t.Fatalf("seed %d: silent Dominator set differs at %d: %v vs %v", seed, p, s, first)
			}
		}
	}
}

func TestNCWitnessFrozenMIS(t *testing.T) {
	// The frozen (♦-1-stable) MIS variant has many silent configurations
	// — including ones with Dominators that never see each other — so
	// the Definition 10 witness pair (both Dominator) is harvestable.
	// Colors are chosen so that both witness processes can stabilize as
	// Dominators in some run: with a 2-coloring the color-1 processes
	// are forced Dominators even when frozen.
	g := graph.Path(6)
	colors := []int{1, 2, 3, 1, 2, 3}
	sys, err := mis.NewSystem(g, frozen.MISSpec(3), colors)
	if err != nil {
		t.Fatal(err)
	}
	w, err := FindNCWitness(sys, mis.IsLegitimate, 1, 2,
		func(a, b []int) bool {
			return a[mis.VarS] == mis.Dominator && b[mis.VarS] == mis.Dominator
		},
		700, 400, 100000)
	if err != nil {
		t.Fatal(err)
	}
	if w.AlphaP[mis.VarS] != mis.Dominator || w.AlphaQ[mis.VarS] != mis.Dominator {
		t.Fatal("witness states are not both Dominator")
	}
}

func TestNCWitnessMatching(t *testing.T) {
	g := graph.Path(6)
	colors := graph.GreedyLocalColoring(g)
	sys, err := matching.NewSystem(g, matching.Spec(g.MaxDegree()+1), colors)
	if err != nil {
		t.Fatal(err)
	}
	// Two adjacent free processes violate maximality.
	w, err := FindNCWitness(sys, matching.IsLegitimate, 2, 3,
		func(a, b []int) bool {
			return a[matching.VarPR] == 0 && b[matching.VarPR] == 0
		},
		900, 300, 200000)
	if err != nil {
		t.Fatal(err)
	}
	if w.AlphaP[matching.VarPR] != 0 || w.AlphaQ[matching.VarPR] != 0 {
		t.Fatal("witness states are not both free")
	}
}

func TestNCWitnessRequiresAdjacency(t *testing.T) {
	g := graph.Path(5)
	sys, err := model.NewSystem(g, coloring.Spec(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := FindNCWitness(sys, coloring.IsLegitimate, 0, 4,
		func(a, b []int) bool { return true }, 1, 5, 1000); err == nil {
		t.Fatal("non-adjacent witness pair accepted")
	}
}

func TestRecoveryStepsReported(t *testing.T) {
	d, err := Theorem1Coloring5Chain()
	if err != nil {
		t.Fatal(err)
	}
	out, err := d.Check(7, 200000)
	if err != nil {
		t.Fatal(err)
	}
	if out.RealRecovers && out.RecoverySteps <= 0 {
		t.Fatal("recovery reported with non-positive step count")
	}
}
