package verify

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/model"
	"repro/internal/protocols/coloring"
	"repro/internal/protocols/frozen"
)

// StitchTrace records how a stitched configuration was obtained by the
// search-based procedure.
type StitchTrace struct {
	// Case is "direct-5" (Figure 1 (d)) or "mirror-7" (Figure 1 (c)).
	Case string
	// SeedA and SeedB are the run seeds that produced the two silent
	// source configurations γ3 and γ4 of the proof.
	SeedA, SeedB uint64
	// GammaA and GammaB are the harvested silent configurations on the
	// 5-chain.
	GammaA, GammaB *model.Config
}

// StitchSearchColoring executes the cut-and-stitch procedure from the
// proof of Theorem 1 against the frozen (♦-1-stable) coloring protocol
// on the anonymous 5-chain:
//
//  1. run the protocol to silence and harvest a configuration γA in
//     which p3 has stopped reading p4 (its pointer rests on p2);
//  2. run it again and harvest a silent γB in which p4 carries the same
//     color as p3 does in γA, and has stopped reading either p5
//     (Figure 1 (d), direct stitch on the 5-chain) or p3 (Figure 1 (c),
//     mirrored stitch onto a 7-chain);
//  3. transplant the process states; nobody reads across the seam, so
//     the stitched configuration is silent yet monochromatic on the seam
//     edge.
//
// The returned Demo carries both the frozen system (deadlocked) and the
// real Protocol COLORING system (which recovers).
func StitchSearchColoring(startSeed uint64) (*Demo, *StitchTrace, error) {
	chain := graph.TheoremOneChain()
	fsys5, err := model.NewSystem(chain, frozen.ColoringSpec(), nil)
	if err != nil {
		return nil, nil, err
	}
	const (
		attempts = 600
		maxSteps = 20000
	)
	// Step 1: γA with cur.p3 resting on p2 (port 1, stored 0).
	gammaA, seedA, err := FindSilentConfig(fsys5, func(c *model.Config) bool {
		return c.Internal[2][coloring.VarCur] == 0
	}, startSeed, attempts, maxSteps)
	if err != nil {
		return nil, nil, fmt.Errorf("verify: harvesting γA: %w", err)
	}
	alpha3 := gammaA.Comm[2][coloring.VarC]

	// Step 2: γB with C.p4 = α3; either pointer direction of p4 yields a
	// construction.
	gammaB, seedB, err := FindSilentConfig(fsys5, func(c *model.Config) bool {
		return c.Comm[3][coloring.VarC] == alpha3
	}, startSeed+attempts, attempts, maxSteps)
	if err != nil {
		return nil, nil, fmt.Errorf("verify: harvesting γB: %w", err)
	}

	tr := &StitchTrace{SeedA: seedA, SeedB: seedB, GammaA: gammaA.Clone(), GammaB: gammaB.Clone()}
	if gammaB.Internal[3][coloring.VarCur] == 1 {
		// p4 rests on p5 — it never reads p3: direct 5-chain stitch
		// (Figure 1 (d)).
		tr.Case = "direct-5"
		demo, err := buildDirect5(gammaA, gammaB)
		return demo, tr, err
	}
	// p4 rests on p3 — in γB it never reads p5: mirrored 7-chain stitch
	// (Figure 1 (c)).
	tr.Case = "mirror-7"
	demo, err := buildMirror7(gammaA, gammaB)
	return demo, tr, err
}

func buildDirect5(gammaA, gammaB *model.Config) (*Demo, error) {
	g := graph.TheoremOneChain()
	fsys, err := model.NewSystem(g, frozen.ColoringSpec(), nil)
	if err != nil {
		return nil, err
	}
	rsys, err := model.NewSystem(g, coloring.Spec(), nil)
	if err != nil {
		return nil, err
	}
	cfg := model.NewZeroConfig(fsys)
	for p := 0; p <= 2; p++ {
		copyState(cfg, p, gammaA, p)
	}
	for p := 3; p <= 4; p++ {
		copyState(cfg, p, gammaB, p)
	}
	return &Demo{
		Name:   "thm1-coloring-stitch-direct5",
		Frozen: fsys,
		Real:   rsys,
		Config: cfg,
		Legit:  coloring.IsLegitimate,
		SeamP:  2, SeamQ: 3,
	}, nil
}

func buildMirror7(gammaA, gammaB *model.Config) (*Demo, error) {
	g := graph.TheoremOneStitched()
	fsys, err := model.NewSystem(g, frozen.ColoringSpec(), nil)
	if err != nil {
		return nil, err
	}
	rsys, err := model.NewSystem(g, coloring.Spec(), nil)
	if err != nil {
		return nil, err
	}
	cfg := model.NewZeroConfig(fsys)
	// p'1..p'3 take p1..p3 from γA with orientation preserved.
	for p := 0; p <= 2; p++ {
		copyState(cfg, p, gammaA, p)
	}
	// p'4..p'7 take p4, p3, p2, p1 from γB with mirrored orientation:
	// on a path, mirroring swaps the two ports of interior processes.
	sources := []int{3, 2, 1, 0}
	for i, src := range sources {
		dst := 4 + i - 1 // dst = 3, 4, 5, 6
		copyState(cfg, dst, gammaB, src)
		if src >= 1 && src <= 3 { // interior in the 5-chain: mirror cur
			cfg.Internal[dst][coloring.VarCur] = 1 - gammaB.Internal[src][coloring.VarCur]
		}
	}
	return &Demo{
		Name:   "thm1-coloring-stitch-mirror7",
		Frozen: fsys,
		Real:   rsys,
		Config: cfg,
		Legit:  coloring.IsLegitimate,
		SeamP:  2, SeamQ: 3,
	}, nil
}

func copyState(dst *model.Config, dp int, src *model.Config, sp int) {
	copy(dst.Comm[dp], src.Comm[sp])
	copy(dst.Internal[dp], src.Internal[sp])
}

// StitchSearchTheorem2Coloring executes the Theorem 2 stitch on the
// rooted dag-oriented 6-process network of Figure 3: harvest a silent
// γ2 in which p2 has stopped reading p5 and p6 has stopped reading p4,
// harvest a silent γ5 in which p5 carries p2's γ2 color and has stopped
// reading p2 while p4 has stopped reading p6, then combine
// {p1,p2,p3,p6} from γ2 with {p4,p5} from γ5 (Figure 4 (c)).
func StitchSearchTheorem2Coloring(startSeed uint64) (*Demo, *StitchTrace, error) {
	rd := graph.TheoremTwoNetwork()
	g := rd.Graph
	fsys, err := model.NewSystem(g, frozen.ColoringSpec(), nil)
	if err != nil {
		return nil, nil, err
	}
	rsys, err := model.NewSystem(g, coloring.Spec(), nil)
	if err != nil {
		return nil, nil, err
	}
	const (
		attempts = 800
		maxSteps = 20000
	)
	// ids: p1=0 p2=1 p3=2 p4=3 p5=4 p6=5.
	curAt := func(c *model.Config, p, q int) bool {
		return c.Internal[p][coloring.VarCur] == g.PortOf(p, q)-1
	}
	gamma2, seedA, err := FindSilentConfig(fsys, func(c *model.Config) bool {
		return curAt(c, 1, 0) && // p2 reads p1, never p5
			curAt(c, 5, 2) // p6 reads p3, never p4
	}, startSeed, attempts, maxSteps)
	if err != nil {
		return nil, nil, fmt.Errorf("verify: harvesting γ2: %w", err)
	}
	alpha2 := gamma2.Comm[1][coloring.VarC]
	gamma5, seedB, err := FindSilentConfig(fsys, func(c *model.Config) bool {
		return c.Comm[4][coloring.VarC] == alpha2 &&
			curAt(c, 4, 3) && // p5 reads p4, never p2
			curAt(c, 3, 4) // p4 reads p5, never p6
	}, startSeed+attempts, attempts, maxSteps)
	if err != nil {
		return nil, nil, fmt.Errorf("verify: harvesting γ5: %w", err)
	}
	cfg := model.NewZeroConfig(fsys)
	for _, p := range []int{0, 1, 2, 5} {
		copyState(cfg, p, gamma2, p)
	}
	for _, p := range []int{3, 4} {
		copyState(cfg, p, gamma5, p)
	}
	demo := &Demo{
		Name:   "thm2-coloring-stitch",
		Frozen: fsys,
		Real:   rsys,
		Config: cfg,
		Legit:  coloring.IsLegitimate,
		SeamP:  1, SeamQ: 4,
	}
	tr := &StitchTrace{Case: "theorem2", SeedA: seedA, SeedB: seedB,
		GammaA: gamma2.Clone(), GammaB: gamma5.Clone()}
	return demo, tr, nil
}
