package verify

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/model"
	"repro/internal/protocols/coloring"
	"repro/internal/protocols/frozen"
	"repro/internal/protocols/matching"
	"repro/internal/protocols/mis"
)

// This file hand-builds the stitched configurations of Figures 1-6
// deterministically. Each construction is exactly the final
// configuration the cut-and-stitch proofs of Theorems 1-2 produce: a
// seam of two adjacent processes whose communication states are jointly
// illegitimate, with every process's cur pointer (the one neighbor a
// frozen process keeps reading) aimed away from the seam, so the frozen
// protocol is deadlocked (silent) while the real protocol's scan
// discovers the seam.

// Theorem1Coloring7Chain builds the configuration of Figure 1 (c): the
// 7-process chain p'1..p'7 obtained by stitching two silent executions
// of the 5-chain, with a color conflict on the seam edge {p'3, p'4}
// (0-based ids 2 and 3).
func Theorem1Coloring7Chain() (*Demo, error) {
	g := graph.TheoremOneStitched() // path of 7
	fsys, err := model.NewSystem(g, frozen.ColoringSpec(), nil)
	if err != nil {
		return nil, err
	}
	rsys, err := model.NewSystem(g, coloring.Spec(), nil)
	if err != nil {
		return nil, err
	}
	cfg := model.NewZeroConfig(fsys)
	colors := []int{0, 1, 0 /*seam*/, 0 /*seam*/, 1, 0, 1}
	for p, c := range colors {
		cfg.Comm[p][coloring.VarC] = c
	}
	// cur pointers: the seam processes look away from each other
	// (p'3 at its left neighbor, p'4 at its right neighbor); everyone
	// else rests on any conflict-free neighbor.
	cfg.Internal[2][coloring.VarCur] = 0 // p'3 → p'2 (port 1 = left)
	cfg.Internal[3][coloring.VarCur] = 1 // p'4 → p'5 (port 2 = right)
	// Interior non-seam processes: point left (different color by
	// construction); endpoints have a single port.
	cfg.Internal[1][coloring.VarCur] = 0
	cfg.Internal[4][coloring.VarCur] = 0
	cfg.Internal[5][coloring.VarCur] = 0
	return &Demo{
		Name:   "thm1-coloring-7chain",
		Frozen: fsys,
		Real:   rsys,
		Config: cfg,
		Legit:  coloring.IsLegitimate,
		SeamP:  2, SeamQ: 3,
	}, nil
}

// Theorem1Coloring5Chain builds the configuration of Figure 1 (d): the
// direct 5-chain stitch with the seam on edge {p'3, p'4}.
func Theorem1Coloring5Chain() (*Demo, error) {
	g := graph.TheoremOneChain()
	fsys, err := model.NewSystem(g, frozen.ColoringSpec(), nil)
	if err != nil {
		return nil, err
	}
	rsys, err := model.NewSystem(g, coloring.Spec(), nil)
	if err != nil {
		return nil, err
	}
	cfg := model.NewZeroConfig(fsys)
	colors := []int{0, 1, 0 /*seam*/, 0 /*seam*/, 1}
	for p, c := range colors {
		cfg.Comm[p][coloring.VarC] = c
	}
	cfg.Internal[2][coloring.VarCur] = 0 // p'3 → left
	cfg.Internal[3][coloring.VarCur] = 1 // p'4 → right
	cfg.Internal[1][coloring.VarCur] = 0
	return &Demo{
		Name:   "thm1-coloring-5chain",
		Frozen: fsys,
		Real:   rsys,
		Config: cfg,
		Legit:  coloring.IsLegitimate,
		SeamP:  2, SeamQ: 3,
	}, nil
}

// Theorem1MIS5Chain builds a silent illegitimate configuration for the
// frozen MIS protocol on the 5-chain (with local identifiers, since MIS
// requires them): two adjacent
// Dominators on the seam edge, each resting its cur pointer on a
// dominated neighbor, so neither ever learns about the other.
//
// Local identifiers (1-based colors): [1, 2, 1, 2, 3];
// S: [Dominator, dominated, Dominator, Dominator, dominated].
func Theorem1MIS5Chain() (*Demo, error) {
	g := graph.TheoremOneChain()
	colors := []int{1, 2, 1, 2, 3}
	maxColors := 3
	fsys, err := mis.NewSystem(g, frozen.MISSpec(maxColors), colors)
	if err != nil {
		return nil, err
	}
	rsys, err := mis.NewSystem(g, mis.Spec(maxColors), colors)
	if err != nil {
		return nil, err
	}
	cfg := model.NewZeroConfig(fsys)
	states := []int{mis.Dominator, mis.Dominated, mis.Dominator, mis.Dominator, mis.Dominated}
	for p, s := range states {
		cfg.Comm[p][mis.VarS] = s
	}
	// cur pointers (0-based):
	//   p0 → p1 (only port) : Dominator watching a dominated neighbor.
	//   p1 → p0 (port 1)    : dominated, watching Dominator with smaller color.
	//   p2 → p1 (port 1)    : seam Dominator looking left at a dominated.
	//   p3 → p4 (port 2)    : seam Dominator looking right at a dominated.
	//   p4 → p3 (only port) : dominated, watching Dominator with smaller color.
	cfg.Internal[1][mis.VarCur] = 0
	cfg.Internal[2][mis.VarCur] = 0
	cfg.Internal[3][mis.VarCur] = 1
	return &Demo{
		Name:   "thm1-mis-5chain",
		Frozen: fsys,
		Real:   rsys,
		Config: cfg,
		Legit:  mis.IsLegitimate,
		SeamP:  2, SeamQ: 3,
	}, nil
}

// Theorem1Matching6Chain builds a silent illegitimate configuration for
// the frozen MATCHING protocol on a 6-chain: the end pairs {0,1} and
// {4,5} are married; the middle processes 2 and 3 are both free but rest
// their cur pointers on their married neighbors, so the matching is
// never extended across the seam edge {2, 3}.
func Theorem1Matching6Chain() (*Demo, error) {
	g := graph.Path(6)
	colors := graph.GreedyLocalColoring(g) // [1 2 1 2 1 2]
	maxColors := g.MaxDegree() + 1
	fsys, err := matching.NewSystem(g, frozen.MatchingSpec(maxColors), colors)
	if err != nil {
		return nil, err
	}
	rsys, err := matching.NewSystem(g, matching.Spec(maxColors), colors)
	if err != nil {
		return nil, err
	}
	cfg := model.NewZeroConfig(fsys)
	marry := func(a, b int) {
		cfg.Comm[a][matching.VarPR] = g.PortOf(a, b)
		cfg.Comm[b][matching.VarPR] = g.PortOf(b, a)
		cfg.Comm[a][matching.VarM] = 1
		cfg.Comm[b][matching.VarM] = 1
		cfg.Internal[a][matching.VarCur] = g.PortOf(a, b) - 1
		cfg.Internal[b][matching.VarCur] = g.PortOf(b, a) - 1
	}
	marry(0, 1)
	marry(4, 5)
	// Free seam processes look away from each other, at married
	// neighbors (PR ≠ 0 there, so propose/accept stay disabled).
	cfg.Internal[2][matching.VarCur] = g.PortOf(2, 1) - 1
	cfg.Internal[3][matching.VarCur] = g.PortOf(3, 4) - 1
	return &Demo{
		Name:   "thm1-matching-6chain",
		Frozen: fsys,
		Real:   rsys,
		Config: cfg,
		Legit:  matching.IsLegitimate,
		SeamP:  2, SeamQ: 3,
	}, nil
}

// Theorem2Coloring builds the configuration of Figure 4 (c) on the
// rooted dag-oriented 6-process network of Figure 3: the seam is the
// edge {p2, p5} (0-based ids 1 and 4); p2 keeps reading p1 and p5 keeps
// reading p4, so the conflict between them is never observed even though
// the network is rooted and dag-oriented.
func Theorem2Coloring() (*Demo, error) {
	rd := graph.TheoremTwoNetwork()
	g := rd.Graph
	fsys, err := model.NewSystem(g, frozen.ColoringSpec(), nil)
	if err != nil {
		return nil, err
	}
	rsys, err := model.NewSystem(g, coloring.Spec(), nil)
	if err != nil {
		return nil, err
	}
	cfg := model.NewZeroConfig(fsys)
	// ids:           p1 p2 p3 p4 p5 p6
	colors := []int{1, 0, 2, 2, 0, 1}
	// Edges: (0,1) 1-0 ok, (1,4) 0-0 SEAM, (3,4) 2-0 ok, (3,5) 2-1 ok,
	// (2,5) 2-1 ok, (0,2) 1-2 ok.
	for p, c := range colors {
		cfg.Comm[p][coloring.VarC] = c
	}
	set := func(p, q int) {
		cfg.Internal[p][coloring.VarCur] = g.PortOf(p, q) - 1
	}
	set(1, 0) // p2 reads p1, never p5
	set(4, 3) // p5 reads p4, never p2
	set(0, 1)
	set(2, 5)
	set(3, 4)
	set(5, 2)
	return &Demo{
		Name:   "thm2-coloring-dag",
		Frozen: fsys,
		Real:   rsys,
		Config: cfg,
		Legit:  coloring.IsLegitimate,
		SeamP:  1, SeamQ: 4,
	}, nil
}

// TheoremOneSpiderColoring generalizes the Theorem 1 construction to
// arbitrary Δ >= 2 on the Δ²+1-node spider of Figure 2: the center and
// one middle node share a color; the center rests its pointer on another
// middle node, the conflicting middle node on one of its pendant leaves.
func TheoremOneSpiderColoring(delta int) (*Demo, error) {
	if delta < 2 {
		return nil, fmt.Errorf("verify: spider construction needs Δ >= 2")
	}
	g := graph.TheoremOneSpider(delta)
	fsys, err := model.NewSystem(g, frozen.ColoringSpec(), nil)
	if err != nil {
		return nil, err
	}
	rsys, err := model.NewSystem(g, coloring.Spec(), nil)
	if err != nil {
		return nil, err
	}
	cfg := model.NewZeroConfig(fsys)
	// Colors: center = 0; middle node 1 = 0 (SEAM with center);
	// middle nodes 2..Δ = 1; every leaf = 2 (Δ >= 2 so palette has >= 3).
	cfg.Comm[0][coloring.VarC] = 0
	cfg.Comm[1][coloring.VarC] = 0
	for mid := 2; mid <= delta; mid++ {
		cfg.Comm[mid][coloring.VarC] = 1
	}
	for leaf := delta + 1; leaf < g.N(); leaf++ {
		cfg.Comm[leaf][coloring.VarC] = 2
	}
	// Pointers: center reads middle node 2 (color 1 ≠ 0): disabled.
	cfg.Internal[0][coloring.VarCur] = g.PortOf(0, 2) - 1
	// Middle node 1 reads its first leaf (color 2 ≠ 0): disabled.
	for port := 1; port <= g.Degree(1); port++ {
		if g.Neighbor(1, port) != 0 {
			cfg.Internal[1][coloring.VarCur] = port - 1
			break
		}
	}
	// Other middles read a leaf; leaves read their middle (colors differ).
	for mid := 2; mid <= delta; mid++ {
		for port := 1; port <= g.Degree(mid); port++ {
			if g.Neighbor(mid, port) != 0 {
				cfg.Internal[mid][coloring.VarCur] = port - 1
				break
			}
		}
	}
	return &Demo{
		Name:   fmt.Sprintf("thm1-coloring-spider-%d", delta),
		Frozen: fsys,
		Real:   rsys,
		Config: cfg,
		Legit:  coloring.IsLegitimate,
		SeamP:  0, SeamQ: 1,
	}, nil
}

// AllHandcrafted returns every deterministic construction.
func AllHandcrafted() ([]*Demo, error) {
	var demos []*Demo
	for _, build := range []func() (*Demo, error){
		Theorem1Coloring7Chain,
		Theorem1Coloring5Chain,
		Theorem1MIS5Chain,
		Theorem1Matching6Chain,
		Theorem2Coloring,
	} {
		d, err := build()
		if err != nil {
			return nil, err
		}
		demos = append(demos, d)
	}
	for delta := 2; delta <= 4; delta++ {
		d, err := TheoremOneSpiderColoring(delta)
		if err != nil {
			return nil, err
		}
		demos = append(demos, d)
	}
	return demos, nil
}
