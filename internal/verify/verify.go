// Package verify makes the paper's impossibility results (Section 4)
// executable.
//
// Theorem 1 (anonymous networks) and Theorem 2 (rooted dag-oriented
// networks) show that no ♦-k-stable (k < Δ) protocol can self-stabilize
// to a neighbor-complete predicate: take two silent executions, cut out
// the states around two processes that eventually stop reading one
// neighbor, and stitch them into a configuration that is silent — nobody
// ever reads across the seam — yet violates the predicate at the seam.
//
// This package builds those configurations concretely for the frozen
// (♦-1-stable) protocol variants of internal/protocols/frozen, checks
// them (silent + illegitimate = the protocol is not self-stabilizing),
// and runs the *control*: the same configuration under the paper's real
// 1-efficient protocol is not silent, because some process's perpetual
// scan eventually reads across the seam, and the system recovers.
package verify

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/rng"
	"repro/internal/sched"
)

// Predicate is a protocol legitimacy predicate.
type Predicate func(*model.System, *model.Config) bool

// Demo is one executable impossibility instance: a configuration on a
// network, a frozen (♦-k-stable) system it deadlocks, and the real
// protocol system it cannot fool.
type Demo struct {
	// Name identifies the construction (e.g. "thm1-coloring-7chain").
	Name string
	// Frozen is the system running the ♦-k-stable variant.
	Frozen *model.System
	// Real is the system running the paper's 1-efficient protocol on
	// the same network with the same constants.
	Real *model.System
	// Config is the stitched configuration.
	Config *model.Config
	// Legit is the predicate both protocols should stabilize to.
	Legit Predicate
	// SeamP and SeamQ are the two adjacent processes whose communication
	// states jointly violate the predicate.
	SeamP, SeamQ int
}

// Outcome reports the four checks run on a Demo.
type Outcome struct {
	// FrozenSilent: the stitched configuration is silent under the
	// frozen protocol (the deadlock exists).
	FrozenSilent bool
	// Illegitimate: the stitched configuration violates the predicate.
	Illegitimate bool
	// FrozenImpossible is the impossibility witness:
	// FrozenSilent && Illegitimate means the frozen protocol is not
	// self-stabilizing, as Theorems 1-2 predict for any ♦-k-stable
	// protocol with k < Δ.
	FrozenImpossible bool
	// RealSilent: the same configuration under the real protocol
	// (expected false — a scanning process sees across the seam).
	RealSilent bool
	// RealRecovers: the real protocol converges from the stitched
	// configuration to a legitimate silent configuration.
	RealRecovers bool
	// RecoverySteps is the step count of the recovery run.
	RecoverySteps int
}

// Check runs the four checks of the demonstration.
func (d *Demo) Check(seed uint64, maxSteps int) (Outcome, error) {
	var out Outcome
	frozenSilent, err := model.CommSilent(d.Frozen, d.Config)
	if err != nil {
		return out, fmt.Errorf("verify: frozen silence check: %w", err)
	}
	out.FrozenSilent = frozenSilent
	out.Illegitimate = !d.Legit(d.Frozen, d.Config)
	out.FrozenImpossible = out.FrozenSilent && out.Illegitimate

	realSilent, err := model.CommSilent(d.Real, d.Config)
	if err != nil {
		return out, fmt.Errorf("verify: real silence check: %w", err)
	}
	out.RealSilent = realSilent

	res, err := core.Run(d.Real, d.Config, core.RunOptions{
		Scheduler:  sched.NewRandomSubset(seed),
		Seed:       seed,
		MaxSteps:   maxSteps,
		CheckEvery: 4,
		Legitimate: func(s *model.System, c *model.Config) bool { return d.Legit(s, c) },
	})
	if err != nil {
		return out, fmt.Errorf("verify: recovery run: %w", err)
	}
	out.RealRecovers = res.Silent && res.LegitimateAtSilence
	out.RecoverySteps = res.StepsToSilence
	return out, nil
}

// FindSilentConfig runs the system from random initial configurations
// until reaching a silent configuration satisfying accept, trying
// successive seeds. It is the "let the protocol stabilize, then harvest
// the silent configuration" step of the stitch procedure.
func FindSilentConfig(sys *model.System, accept func(*model.Config) bool, startSeed uint64, attempts, maxSteps int) (*model.Config, uint64, error) {
	for a := 0; a < attempts; a++ {
		seed := startSeed + uint64(a)
		cfg := model.NewRandomConfig(sys, rng.New(rng.Derive(seed, 0xC0)))
		res, err := core.Run(sys, cfg, core.RunOptions{
			Scheduler:  sched.NewRandomSubset(seed),
			Seed:       seed,
			MaxSteps:   maxSteps,
			CheckEvery: 2,
		})
		if err != nil {
			return nil, 0, err
		}
		if res.Silent && accept(res.Final) {
			return res.Final, seed, nil
		}
	}
	return nil, 0, fmt.Errorf("verify: no accepted silent configuration in %d attempts", attempts)
}

// NCWitness is an executable witness of neighbor-completeness
// (Definition 10) for a predicate P: two adjacent processes p, q and two
// *silent* configurations γp, γq such that the communication state of p
// in γp (αp) and of q in γq (αq) cannot coexist legitimately.
type NCWitness struct {
	P, Q           int
	AlphaP, AlphaQ []int
	GammaP, GammaQ *model.Config
}

// FindNCWitness searches executions of the (real, self-stabilizing)
// protocol for a neighbor-completeness witness on the edge (p, q):
// conflict(αp, αq) must report whether the two communication states are
// jointly illegitimate. Definition 10's conditions 1 and 2b (silence of
// γp and γq) hold by construction; condition 2a is re-checked by
// substituting both states into γp and evaluating the predicate.
func FindNCWitness(sys *model.System, legit Predicate, p, q int,
	conflict func(alphaP, alphaQ []int) bool,
	startSeed uint64, attempts, maxSteps int) (*NCWitness, error) {

	if sys.Graph().PortOf(p, q) == 0 {
		return nil, fmt.Errorf("verify: %d and %d are not neighbors", p, q)
	}
	var silents []*model.Config
	for a := 0; a < attempts; a++ {
		seed := startSeed + uint64(a)
		cfg := model.NewRandomConfig(sys, rng.New(rng.Derive(seed, 0xAC)))
		res, err := core.Run(sys, cfg, core.RunOptions{
			Scheduler:  sched.NewRandomSubset(seed),
			Seed:       seed,
			MaxSteps:   maxSteps,
			CheckEvery: 2,
		})
		if err != nil {
			return nil, err
		}
		if !res.Silent {
			continue
		}
		silents = append(silents, res.Final)
		for _, ga := range silents {
			for _, gb := range silents {
				if conflict(ga.Comm[p], gb.Comm[q]) {
					w := &NCWitness{
						P: p, Q: q,
						AlphaP: append([]int(nil), ga.Comm[p]...),
						AlphaQ: append([]int(nil), gb.Comm[q]...),
						GammaP: ga.Clone(), GammaQ: gb.Clone(),
					}
					// Condition 2a: substituting both states yields an
					// illegitimate configuration.
					joint := ga.Clone()
					copy(joint.Comm[q], gb.Comm[q])
					if legit(sys, joint) {
						continue
					}
					return w, nil
				}
			}
		}
	}
	return nil, fmt.Errorf("verify: no neighbor-completeness witness found in %d attempts", attempts)
}
