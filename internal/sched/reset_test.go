package sched

import (
	"slices"
	"testing"

	"repro/internal/graph"
	"repro/internal/model"
	"repro/internal/protocols/coloring"
	"repro/internal/rng"
)

// TestResetMatchesFresh: for every scheduler, an instance Reset to a new
// seed must produce exactly the selection stream of a freshly
// constructed instance with that seed — the contract that lets the trial
// pool reuse one scheduler per worker.
func TestResetMatchesFresh(t *testing.T) {
	t.Parallel()
	g := graph.Cycle(7)
	sys, err := model.NewSystem(g, coloring.Spec(), nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			reused, err := ByName(name, 1)
			if err != nil {
				t.Fatal(err)
			}
			rs, ok := reused.(Resettable)
			if !ok {
				t.Fatalf("%s does not implement Resettable", name)
			}
			// Dirty the reused instance with a different-seed run first.
			cfgA := model.NewRandomConfig(sys, rng.New(1))
			for step := 0; step < 25; step++ {
				reused.Select(step, sys, cfgA)
			}
			for seed := uint64(2); seed <= 4; seed++ {
				fresh, err := ByName(name, seed)
				if err != nil {
					t.Fatal(err)
				}
				rs.Reset(seed)
				// Drive both over the same evolving configuration: apply
				// the selections of the fresh instance to keep the
				// enabledness-dependent daemons honest.
				cfg := model.NewRandomConfig(sys, rng.New(seed))
				for step := 0; step < 40; step++ {
					want := fresh.Select(step, sys, cfg)
					got := reused.Select(step, sys, cfg)
					if !slices.Equal(want, got) {
						t.Fatalf("seed %d step %d: reset selects %v, fresh selects %v",
							seed, step, got, want)
					}
					model.ExecuteStep(sys, cfg, want, step, func(p int) *rng.Rand {
						return rng.New(rng.Derive(seed, uint64(step*1000+p)))
					}, nil)
				}
			}
		})
	}
}

// TestResetReplaysSelectionSequence: over random systems and seeds, a
// scheduler driven through a computation and then Reset to the same seed
// must reproduce its exact selection sequence when the computation is
// replayed — selection is a pure function of (seed, step, configuration
// history), with no hidden state surviving Reset.
func TestResetReplaysSelectionSequence(t *testing.T) {
	t.Parallel()
	for si, sys := range propertySystems(t) {
		for _, name := range Names() {
			for seed := uint64(1); seed <= 3; seed++ {
				sc, err := ByName(name, seed)
				if err != nil {
					t.Fatal(err)
				}
				const steps = 50
				record := make([][]int, steps)
				cfg := model.NewRandomConfig(sys, rng.New(seed))
				for step := 0; step < steps; step++ {
					sel := sc.Select(step, sys, cfg)
					record[step] = append([]int(nil), sel...)
					stepAll(sys, cfg, sel, step, seed)
				}
				sc.(Resettable).Reset(seed)
				cfg = model.NewRandomConfig(sys, rng.New(seed))
				for step := 0; step < steps; step++ {
					sel := sc.Select(step, sys, cfg)
					if !slices.Equal(sel, record[step]) {
						t.Fatalf("system %d %s seed %d step %d: replay selects %v, recorded %v",
							si, name, seed, step, sel, record[step])
					}
					stepAll(sys, cfg, sel, step, seed)
				}
			}
		}
	}
}
