// Package sched provides schedulers (daemons) for the simulator. The
// paper assumes a distributed fair scheduler: any non-empty subset of
// processes may be selected at each step, and every process is selected
// infinitely often. All schedulers here satisfy distributed fairness
// either surely (synchronous, round-robin, window-bounded) or with
// probability 1 (random selections).
package sched

import (
	"fmt"
	"sort"

	"repro/internal/model"
	"repro/internal/rng"
)

// Synchronous selects every process at every step.
type Synchronous struct{}

// Name implements model.Scheduler.
func (Synchronous) Name() string { return "synchronous" }

// Select implements model.Scheduler.
func (Synchronous) Select(_ int, sys *model.System, _ *model.Config) []int {
	out := make([]int, sys.N())
	for i := range out {
		out[i] = i
	}
	return out
}

// CentralRoundRobin selects a single process per step, cycling through
// ids — the classic fair central daemon.
type CentralRoundRobin struct{}

// Name implements model.Scheduler.
func (CentralRoundRobin) Name() string { return "central-rr" }

// Select implements model.Scheduler.
func (CentralRoundRobin) Select(step int, sys *model.System, _ *model.Config) []int {
	return []int{step % sys.N()}
}

// CentralRandom selects one uniformly random process per step (fair with
// probability 1).
type CentralRandom struct {
	r *rng.Rand
}

// NewCentralRandom returns a CentralRandom scheduler with its own stream.
func NewCentralRandom(seed uint64) *CentralRandom {
	return &CentralRandom{r: rng.New(rng.DeriveString(seed, "sched-central-random"))}
}

// Name implements model.Scheduler.
func (*CentralRandom) Name() string { return "central-random" }

// Select implements model.Scheduler.
func (s *CentralRandom) Select(_ int, sys *model.System, _ *model.Config) []int {
	return []int{s.r.Intn(sys.N())}
}

// RandomSubset selects a uniformly random non-empty subset of processes
// per step — the least structured distributed fair scheduler.
type RandomSubset struct {
	r *rng.Rand
}

// NewRandomSubset returns a RandomSubset scheduler with its own stream.
func NewRandomSubset(seed uint64) *RandomSubset {
	return &RandomSubset{r: rng.New(rng.DeriveString(seed, "sched-random-subset"))}
}

// Name implements model.Scheduler.
func (*RandomSubset) Name() string { return "random-subset" }

// Select implements model.Scheduler.
func (s *RandomSubset) Select(_ int, sys *model.System, _ *model.Config) []int {
	return s.r.SubsetNonEmpty(sys.N())
}

// EnabledBiased selects a random non-empty subset of the enabled
// processes when any exist (falling back to a random singleton
// otherwise). It models daemons that never waste activations; note the
// paper's round definition still counts selections of disabled
// processes, which this daemon avoids until a fixpoint.
type EnabledBiased struct {
	r *rng.Rand
}

// NewEnabledBiased returns an EnabledBiased scheduler with its own stream.
func NewEnabledBiased(seed uint64) *EnabledBiased {
	return &EnabledBiased{r: rng.New(rng.DeriveString(seed, "sched-enabled"))}
}

// Name implements model.Scheduler.
func (*EnabledBiased) Name() string { return "enabled-biased" }

// Select implements model.Scheduler.
func (s *EnabledBiased) Select(_ int, sys *model.System, cfg *model.Config) []int {
	enabled := model.EnabledSet(sys, cfg)
	if len(enabled) == 0 {
		return []int{s.r.Intn(sys.N())}
	}
	idxs := s.r.SubsetNonEmpty(len(enabled))
	out := make([]int, len(idxs))
	for i, j := range idxs {
		out[i] = enabled[j]
	}
	return out
}

// LaziestFair is an adversarial-but-fair central daemon: at each step it
// selects the single process that has gone longest without selection,
// breaking ties toward *disabled* processes (wasting the activation) and
// then toward lower degree. Every process is selected at least once every
// n steps, so the daemon is fair, while being maximally unhelpful to
// protocols that need their enabled processes scheduled.
type LaziestFair struct {
	last map[int]int
}

// NewLaziestFair returns a LaziestFair daemon.
func NewLaziestFair() *LaziestFair {
	return &LaziestFair{last: make(map[int]int)}
}

// Name implements model.Scheduler.
func (*LaziestFair) Name() string { return "laziest-fair" }

// Select implements model.Scheduler.
func (s *LaziestFair) Select(step int, sys *model.System, cfg *model.Config) []int {
	type cand struct {
		p        int
		last     int
		disabled bool
		deg      int
	}
	cands := make([]cand, 0, sys.N())
	for p := 0; p < sys.N(); p++ {
		last, ok := s.last[p]
		if !ok {
			last = -1
		}
		cands = append(cands, cand{
			p:        p,
			last:     last,
			disabled: !model.Enabled(sys, cfg, p),
			deg:      sys.Graph().Degree(p),
		})
	}
	sort.Slice(cands, func(i, j int) bool {
		a, b := cands[i], cands[j]
		if a.last != b.last {
			return a.last < b.last
		}
		if a.disabled != b.disabled {
			return a.disabled
		}
		if a.deg != b.deg {
			return a.deg < b.deg
		}
		return a.p < b.p
	})
	chosen := cands[0].p
	s.last[chosen] = step
	return []int{chosen}
}

// ByName constructs a scheduler from its CLI name.
func ByName(name string, seed uint64) (model.Scheduler, error) {
	switch name {
	case "synchronous", "sync":
		return Synchronous{}, nil
	case "central-rr":
		return CentralRoundRobin{}, nil
	case "central-random":
		return NewCentralRandom(seed), nil
	case "random-subset", "distributed":
		return NewRandomSubset(seed), nil
	case "enabled-biased":
		return NewEnabledBiased(seed), nil
	case "laziest-fair", "adversarial":
		return NewLaziestFair(), nil
	default:
		return nil, fmt.Errorf("sched: unknown scheduler %q (known: %v)", name, Names())
	}
}

// Names lists the scheduler names accepted by ByName.
func Names() []string {
	return []string{
		"synchronous", "central-rr", "central-random", "random-subset",
		"enabled-biased", "laziest-fair",
	}
}
