// Package sched provides schedulers (daemons) for the simulator. The
// paper assumes a distributed fair scheduler: any non-empty subset of
// processes may be selected at each step, and every process is selected
// infinitely often. All schedulers here satisfy distributed fairness
// either surely (synchronous, round-robin, window-bounded) or with
// probability 1 (random selections).
//
// Selection sits on the per-step hot path, so every scheduler reuses an
// internal selection buffer: the slice returned by Select is valid until
// the next Select call on the same scheduler and must not be mutated or
// retained. Consequently a scheduler instance must not be shared by
// concurrently running simulators (the experiment pool builds one per
// trial). Schedulers that consult enabledness also implement
// model.TrackedScheduler, so a Simulator serves their probes from its
// incremental EnabledTracker instead of an O(n) from-scratch rescan;
// both paths select identically.
package sched

import (
	"fmt"

	"repro/internal/model"
	"repro/internal/rng"
)

// Resettable is implemented by every scheduler in this package:
// Reset(seed) rewinds the scheduler to the exact state of a freshly
// constructed instance with that seed (same selection stream, same
// derived generator streams), reusing its buffers. The experiment pool
// resets one scheduler instance per worker across trials instead of
// constructing a fresh one per trial; because a reset instance selects
// identically to a new one, the reuse never perturbs a computation.
type Resettable interface {
	// Reset rewinds the scheduler to its freshly-constructed state for
	// seed. Schedulers that ignore seeds ignore the argument.
	Reset(seed uint64)
}

// Compile-time checks: every scheduler is resettable.
var (
	_ Resettable = (*Synchronous)(nil)
	_ Resettable = (*CentralRoundRobin)(nil)
	_ Resettable = (*CentralRandom)(nil)
	_ Resettable = (*RandomSubset)(nil)
	_ Resettable = (*EnabledBiased)(nil)
	_ Resettable = (*LaziestFair)(nil)
)

// Synchronous selects every process at every step.
type Synchronous struct {
	buf []int
}

// NewSynchronous returns a Synchronous scheduler.
func NewSynchronous() *Synchronous { return &Synchronous{} }

// Reset implements Resettable (Synchronous is stateless).
func (s *Synchronous) Reset(uint64) {}

// Name implements model.Scheduler.
func (*Synchronous) Name() string { return "synchronous" }

// Select implements model.Scheduler.
func (s *Synchronous) Select(_ int, sys *model.System, _ *model.Config) []int {
	if len(s.buf) != sys.N() {
		s.buf = make([]int, sys.N())
		for i := range s.buf {
			s.buf[i] = i
		}
	}
	return s.buf
}

// CentralRoundRobin selects a single process per step, cycling through
// ids — the classic fair central daemon.
type CentralRoundRobin struct {
	sel [1]int
}

// NewCentralRoundRobin returns a CentralRoundRobin scheduler.
func NewCentralRoundRobin() *CentralRoundRobin { return &CentralRoundRobin{} }

// Reset implements Resettable (the cycle position derives from the step
// index, so there is no state to rewind).
func (s *CentralRoundRobin) Reset(uint64) {}

// Name implements model.Scheduler.
func (*CentralRoundRobin) Name() string { return "central-rr" }

// Select implements model.Scheduler.
func (s *CentralRoundRobin) Select(step int, sys *model.System, _ *model.Config) []int {
	s.sel[0] = step % sys.N()
	return s.sel[:]
}

// CentralRandom selects one uniformly random process per step (fair with
// probability 1).
type CentralRandom struct {
	src rng.SplitMix
	r   *rng.Rand
	sel [1]int
}

// NewCentralRandom returns a CentralRandom scheduler with its own stream.
func NewCentralRandom(seed uint64) *CentralRandom {
	s := &CentralRandom{}
	s.r = rng.FromSource(&s.src)
	s.Reset(seed)
	return s
}

// Reset implements Resettable: the generator is rewound to the stream of
// NewCentralRandom(seed).
func (s *CentralRandom) Reset(seed uint64) {
	s.src.Reseed(rng.DeriveString(seed, "sched-central-random"))
}

// Name implements model.Scheduler.
func (*CentralRandom) Name() string { return "central-random" }

// Select implements model.Scheduler.
func (s *CentralRandom) Select(_ int, sys *model.System, _ *model.Config) []int {
	s.sel[0] = s.r.Intn(sys.N())
	return s.sel[:]
}

// RandomSubset selects a uniformly random non-empty subset of processes
// per step — the least structured distributed fair scheduler.
type RandomSubset struct {
	src rng.SplitMix
	r   *rng.Rand
	buf []int
}

// NewRandomSubset returns a RandomSubset scheduler with its own stream.
func NewRandomSubset(seed uint64) *RandomSubset {
	s := &RandomSubset{}
	s.r = rng.FromSource(&s.src)
	s.Reset(seed)
	return s
}

// Reset implements Resettable: the generator is rewound to the stream of
// NewRandomSubset(seed); the selection buffer is kept.
func (s *RandomSubset) Reset(seed uint64) {
	s.src.Reseed(rng.DeriveString(seed, "sched-random-subset"))
}

// Name implements model.Scheduler.
func (*RandomSubset) Name() string { return "random-subset" }

// Select implements model.Scheduler.
func (s *RandomSubset) Select(_ int, sys *model.System, _ *model.Config) []int {
	s.buf = s.r.AppendSubsetNonEmpty(s.buf[:0], sys.N())
	return s.buf
}

// EnabledBiased selects a random non-empty subset of the enabled
// processes when any exist (falling back to a random singleton
// otherwise). It models daemons that never waste activations; note the
// paper's round definition still counts selections of disabled
// processes, which this daemon avoids until a fixpoint.
type EnabledBiased struct {
	src     rng.SplitMix
	r       *rng.Rand
	enabled []int
	idxs    []int
	out     []int
}

// NewEnabledBiased returns an EnabledBiased scheduler with its own stream.
func NewEnabledBiased(seed uint64) *EnabledBiased {
	s := &EnabledBiased{}
	s.r = rng.FromSource(&s.src)
	s.Reset(seed)
	return s
}

// Reset implements Resettable: the generator is rewound to the stream of
// NewEnabledBiased(seed); the selection buffers are kept.
func (s *EnabledBiased) Reset(seed uint64) {
	s.src.Reseed(rng.DeriveString(seed, "sched-enabled"))
}

// Name implements model.Scheduler.
func (*EnabledBiased) Name() string { return "enabled-biased" }

// Select implements model.Scheduler.
func (s *EnabledBiased) Select(_ int, sys *model.System, cfg *model.Config) []int {
	s.enabled = s.enabled[:0]
	for p := 0; p < sys.N(); p++ {
		if model.Enabled(sys, cfg, p) {
			s.enabled = append(s.enabled, p)
		}
	}
	return s.fromEnabled(sys)
}

// SelectTracked implements model.TrackedScheduler: identical selections,
// with enabledness answered by the simulator's incremental tracker.
func (s *EnabledBiased) SelectTracked(_ int, sys *model.System, _ *model.Config, en model.EnabledView) []int {
	s.enabled = en.AppendEnabled(s.enabled[:0])
	return s.fromEnabled(sys)
}

func (s *EnabledBiased) fromEnabled(sys *model.System) []int {
	if len(s.enabled) == 0 {
		s.out = append(s.out[:0], s.r.Intn(sys.N()))
		return s.out
	}
	s.idxs = s.r.AppendSubsetNonEmpty(s.idxs[:0], len(s.enabled))
	s.out = s.out[:0]
	for _, j := range s.idxs {
		s.out = append(s.out, s.enabled[j])
	}
	return s.out
}

// LaziestFair is an adversarial-but-fair central daemon: at each step it
// selects the single process that has gone longest without selection,
// breaking ties toward *disabled* processes (wasting the activation) and
// then toward lower degree, then lower id. Every process is selected at
// least once every n steps, so the daemon is fair, while being maximally
// unhelpful to protocols that need their enabled processes scheduled.
//
// The daemon selects exactly one process per step, so after every process
// has been selected once the last-selection steps are pairwise distinct
// and the "stalest" bucket always holds exactly one process: selection
// degenerates to strict FIFO in order of previous selection. The
// implementation exploits that shape instead of rescanning a last-step
// vector: a warmup bucket of never-selected ids (where the paper's
// disabled/degree tie-break actually engages) feeds a FIFO ring that
// serves every subsequent pick in O(1). Selections are identical to the
// historical two-pass O(n) scan — TestLaziestFairMatchesReferenceScan
// replays both against the same enabledness streams.
type LaziestFair struct {
	n     int   // process count the buckets are built for
	never []int // never-selected ids (warmup bucket, scanned with tie-break)
	ring  []int // FIFO ring of selected ids, stalest first; cap == n
	head  int   // ring index of the stalest selected id
	size  int   // live entries in ring
	sel   [1]int
}

// NewLaziestFair returns a LaziestFair daemon.
func NewLaziestFair() *LaziestFair {
	return &LaziestFair{}
}

// Reset implements Resettable: the selection history is forgotten (every
// process reads as never selected), as in a fresh instance.
func (s *LaziestFair) Reset(uint64) {
	s.n = 0
	s.never = s.never[:0]
	s.head, s.size = 0, 0
}

// Name implements model.Scheduler.
func (*LaziestFair) Name() string { return "laziest-fair" }

// Select implements model.Scheduler.
func (s *LaziestFair) Select(step int, sys *model.System, cfg *model.Config) []int {
	return s.pick(sys, func(p int) bool { return model.Enabled(sys, cfg, p) })
}

// SelectTracked implements model.TrackedScheduler: identical selections,
// with enabledness answered by the simulator's incremental tracker.
func (s *LaziestFair) SelectTracked(step int, sys *model.System, _ *model.Config, en model.EnabledView) []int {
	return s.pick(sys, en.Enabled)
}

func (s *LaziestFair) pick(sys *model.System, enabled func(p int) bool) []int {
	if n := sys.N(); n != s.n {
		s.grow(n)
	}
	var chosen int
	if len(s.never) > 0 {
		// Warmup: every never-selected id shares the stalest "step" (-1),
		// so the tie-break picks among all of them. The scan is explicit
		// about the id tie (the historical ascending scan kept the lowest
		// id implicitly) because swap-removal perturbs bucket order.
		best, bestDisabled, bestDeg, bestIdx := -1, false, 0, -1
		for i, p := range s.never {
			disabled := !enabled(p)
			deg := sys.Graph().Degree(p)
			if best < 0 ||
				(disabled != bestDisabled && disabled) ||
				(disabled == bestDisabled && (deg < bestDeg || (deg == bestDeg && p < best))) {
				best, bestDisabled, bestDeg, bestIdx = p, disabled, deg, i
			}
		}
		chosen = best
		s.never[bestIdx] = s.never[len(s.never)-1]
		s.never = s.never[:len(s.never)-1]
	} else {
		// Steady state: one selection per step keeps last-selection steps
		// pairwise distinct, so the stalest bucket is the ring head alone
		// and the tie-break (including its enabledness probe) never runs.
		chosen = s.ring[s.head]
		s.head++
		if s.head == len(s.ring) {
			s.head = 0
		}
		s.size--
	}
	tail := s.head + s.size
	if tail >= len(s.ring) {
		tail -= len(s.ring)
	}
	s.ring[tail] = chosen
	s.size++
	s.sel[0] = chosen
	return s.sel[:]
}

// grow rebuilds the buckets for n processes, keeping history: ids the
// daemon has already selected stay in the ring in selection order, new
// ids join the never bucket (they read as never selected, exactly as the
// historical last-step vector grew with -1 entries). Ids beyond a shrunk
// n are dropped from both buckets. The common path — Reset followed by a
// first pick — has an empty ring and reuses the buffer in place.
func (s *LaziestFair) grow(n int) {
	for p := s.n; p < n; p++ {
		s.never = append(s.never, p)
	}
	if s.size == 0 {
		if cap(s.ring) >= n {
			s.ring = s.ring[:n]
		} else {
			s.ring = make([]int, n)
		}
	} else {
		ring := make([]int, n)
		size := 0
		for i := 0; i < s.size; i++ {
			j := s.head + i
			if j >= s.n {
				j -= s.n
			}
			if p := s.ring[j]; p < n {
				ring[size] = p
				size++
			}
		}
		s.ring, s.size = ring, size
	}
	if n < s.n {
		kept := s.never[:0]
		for _, p := range s.never {
			if p < n {
				kept = append(kept, p)
			}
		}
		s.never = kept
	}
	s.head, s.n = 0, n
}

// ByName constructs a scheduler from its CLI name.
func ByName(name string, seed uint64) (model.Scheduler, error) {
	switch name {
	case "synchronous", "sync":
		return NewSynchronous(), nil
	case "central-rr":
		return NewCentralRoundRobin(), nil
	case "central-random":
		return NewCentralRandom(seed), nil
	case "random-subset", "distributed":
		return NewRandomSubset(seed), nil
	case "enabled-biased":
		return NewEnabledBiased(seed), nil
	case "laziest-fair", "adversarial":
		return NewLaziestFair(), nil
	default:
		return nil, fmt.Errorf("sched: unknown scheduler %q (known: %v)", name, Names())
	}
}

// Names lists the scheduler names accepted by ByName.
func Names() []string {
	return []string{
		"synchronous", "central-rr", "central-random", "random-subset",
		"enabled-biased", "laziest-fair",
	}
}
