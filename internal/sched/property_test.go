package sched

import (
	"slices"
	"testing"

	"repro/internal/graph"
	"repro/internal/model"
	"repro/internal/protocols/coloring"
	"repro/internal/protocols/mis"
	"repro/internal/rng"
)

// propertySystems builds a randomized system zoo: random topologies of
// several families under two protocols, so the daemon properties are
// checked far from the hand-picked graphs of the unit tests.
func propertySystems(t *testing.T) []*model.System {
	t.Helper()
	var systems []*model.System
	mkColoring := func(g *graph.Graph) {
		sys, err := model.NewSystem(g, coloring.Spec(), nil)
		if err != nil {
			t.Fatal(err)
		}
		systems = append(systems, sys)
	}
	mkMIS := func(g *graph.Graph) {
		sys, err := mis.NewSystem(g, mis.Spec(g.MaxDegree()+1), graph.GreedyLocalColoring(g))
		if err != nil {
			t.Fatal(err)
		}
		systems = append(systems, sys)
	}
	for gseed := uint64(1); gseed <= 3; gseed++ {
		r := rng.New(gseed)
		mkColoring(graph.RandomConnectedGNP(6+r.Intn(12), 0.15+0.3*r.Float64(), r))
		mkMIS(graph.RandomConnectedGNP(6+r.Intn(12), 0.15+0.3*r.Float64(), r))
		mkColoring(graph.RandomGeometric(8+r.Intn(8), 0.5, r))
	}
	return systems
}

// stepAll advances cfg by applying sel with the deterministic per-step
// streams the reset tests use.
func stepAll(sys *model.System, cfg *model.Config, sel []int, step int, seed uint64) {
	model.ExecuteStep(sys, cfg, sel, step, func(p int) *rng.Rand {
		return rng.New(rng.Derive(seed, uint64(step*1000+p)))
	}, nil)
}

// TestSelectIsValidSubset is the daemon selection property over random
// systems and seeds: every Select returns a non-empty, duplicate-free
// subset of the process set, and the enabledness-respecting daemon
// (enabled-biased) returns a subset of the enabled set whenever one
// exists. Every daemon is driven over a live computation, so the
// property is checked on evolving — including near-silent —
// configurations.
func TestSelectIsValidSubset(t *testing.T) {
	t.Parallel()
	for si, sys := range propertySystems(t) {
		for _, name := range Names() {
			for seed := uint64(1); seed <= 3; seed++ {
				sc, err := ByName(name, seed)
				if err != nil {
					t.Fatal(err)
				}
				cfg := model.NewRandomConfig(sys, rng.New(seed))
				for step := 0; step < 60; step++ {
					sel := sc.Select(step, sys, cfg)
					if len(sel) == 0 {
						t.Fatalf("system %d %s seed %d step %d: empty selection", si, name, seed, step)
					}
					seen := make(map[int]bool, len(sel))
					for _, p := range sel {
						if p < 0 || p >= sys.N() {
							t.Fatalf("system %d %s seed %d step %d: selected %d outside [0,%d)", si, name, seed, step, p, sys.N())
						}
						if seen[p] {
							t.Fatalf("system %d %s seed %d step %d: duplicate selection of %d in %v", si, name, seed, step, p, sel)
						}
						seen[p] = true
					}
					if name == "enabled-biased" {
						if enabled := model.EnabledSet(sys, cfg); len(enabled) > 0 {
							for _, p := range sel {
								if !slices.Contains(enabled, p) {
									t.Fatalf("system %d %s seed %d step %d: selected disabled %d while %v enabled",
										si, name, seed, step, p, enabled)
								}
							}
						}
					}
					stepAll(sys, cfg, sel, step, seed)
				}
			}
		}
	}
}

// TestFairnessWindowLiveComputation: every daemon selects every process
// at least once within a bounded window on a live computation (the
// sched_test variant checks the same property on a fixpoint) — the
// operational form of the paper's distributed fairness assumption
// (surely for the deterministic daemons, overwhelmingly likely within
// the generous window for the randomized ones at these sizes and seeds).
func TestFairnessWindowLiveComputation(t *testing.T) {
	t.Parallel()
	sys := propertySystems(t)[0]
	n := sys.N()
	window := 64 * n
	for _, name := range Names() {
		for seed := uint64(1); seed <= 2; seed++ {
			sc, err := ByName(name, seed)
			if err != nil {
				t.Fatal(err)
			}
			cfg := model.NewRandomConfig(sys, rng.New(seed))
			selectedAt := make([]int, n)
			for i := range selectedAt {
				selectedAt[i] = -1
			}
			for step := 0; step < window; step++ {
				sel := sc.Select(step, sys, cfg)
				for _, p := range sel {
					selectedAt[p] = step
				}
				stepAll(sys, cfg, sel, step, seed)
			}
			for p, at := range selectedAt {
				if at < 0 {
					t.Fatalf("%s seed %d: process %d never selected in %d steps", name, seed, p, window)
				}
			}
		}
	}
}
