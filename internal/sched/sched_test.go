package sched

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/model"
)

func testSystem(t *testing.T) *model.System {
	t.Helper()
	spec := &model.Spec{
		Name: "T",
		Comm: []model.VarSpec{{Name: "X", Domain: model.FixedDomain(4)}},
		Actions: []model.Action{{
			Name:  "bump",
			Guard: func(c *model.Ctx) bool { return c.Comm(0) != c.NeighborComm(1, 0) },
			Apply: func(c *model.Ctx) { c.SetComm(0, c.NeighborComm(1, 0)) },
		}},
	}
	sys, err := model.NewSystem(graph.Cycle(6), spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func validSelection(t *testing.T, name string, sel []int, n int) {
	t.Helper()
	if len(sel) == 0 {
		t.Fatalf("%s: empty selection", name)
	}
	seen := map[int]bool{}
	for _, p := range sel {
		if p < 0 || p >= n {
			t.Fatalf("%s: selected %d out of range", name, p)
		}
		if seen[p] {
			t.Fatalf("%s: duplicate selection of %d", name, p)
		}
		seen[p] = true
	}
}

func TestAllSchedulersProduceValidSelections(t *testing.T) {
	sys := testSystem(t)
	cfg := model.NewZeroConfig(sys)
	cfg.Comm[0][0] = 1
	for _, name := range Names() {
		sc, err := ByName(name, 42)
		if err != nil {
			t.Fatal(err)
		}
		if sc.Name() == "" {
			t.Fatalf("%s: empty Name()", name)
		}
		for step := 0; step < 200; step++ {
			sel := sc.Select(step, sys, cfg)
			validSelection(t, name, sel, sys.N())
		}
	}
}

func TestFairnessWindow(t *testing.T) {
	// Every scheduler must select every process within a reasonable
	// window (fairness; random ones with probability ~1 over 4000 steps).
	// The configuration is a fixpoint (everyone disabled) so that
	// enabled-biased exercises its fallback: along real computations its
	// fairness comes from the enabled set shrinking to empty.
	sys := testSystem(t)
	cfg := model.NewZeroConfig(sys)
	for _, name := range Names() {
		sc, err := ByName(name, 7)
		if err != nil {
			t.Fatal(err)
		}
		seen := make([]bool, sys.N())
		count := 0
		for step := 0; step < 4000 && count < sys.N(); step++ {
			for _, p := range sc.Select(step, sys, cfg) {
				if !seen[p] {
					seen[p] = true
					count++
				}
			}
		}
		if count != sys.N() {
			t.Fatalf("%s: only %d/%d processes ever selected", name, count, sys.N())
		}
	}
}

func TestSynchronousSelectsAll(t *testing.T) {
	sys := testSystem(t)
	sel := NewSynchronous().Select(0, sys, model.NewZeroConfig(sys))
	if len(sel) != sys.N() {
		t.Fatalf("synchronous selected %d processes", len(sel))
	}
}

func TestCentralRoundRobinCycle(t *testing.T) {
	sys := testSystem(t)
	cfg := model.NewZeroConfig(sys)
	for step := 0; step < 12; step++ {
		sel := NewCentralRoundRobin().Select(step, sys, cfg)
		if len(sel) != 1 || sel[0] != step%6 {
			t.Fatalf("step %d: selected %v", step, sel)
		}
	}
}

func TestEnabledBiasedSelectsEnabled(t *testing.T) {
	sys := testSystem(t)
	cfg := model.NewZeroConfig(sys)
	cfg.Comm[0][0] = 1 // neighbors of 0 and process 0 become enabled
	enabled := map[int]bool{}
	for _, p := range model.EnabledSet(sys, cfg) {
		enabled[p] = true
	}
	if len(enabled) == 0 {
		t.Fatal("test setup: no process enabled")
	}
	sc := NewEnabledBiased(3)
	for step := 0; step < 100; step++ {
		for _, p := range sc.Select(step, sys, cfg) {
			if !enabled[p] {
				t.Fatalf("enabled-biased selected disabled process %d", p)
			}
		}
	}
}

func TestEnabledBiasedFallsBackWhenAllDisabled(t *testing.T) {
	sys := testSystem(t)
	cfg := model.NewZeroConfig(sys) // everyone disabled
	sc := NewEnabledBiased(3)
	sel := sc.Select(0, sys, cfg)
	validSelection(t, "enabled-biased", sel, sys.N())
}

func TestLaziestFairWindow(t *testing.T) {
	// The adversarial daemon must still be fair: every process selected
	// at least once every n steps.
	sys := testSystem(t)
	cfg := model.NewZeroConfig(sys)
	cfg.Comm[0][0] = 1
	sc := NewLaziestFair()
	last := make([]int, sys.N())
	for i := range last {
		last[i] = -1
	}
	for step := 0; step < 600; step++ {
		sel := sc.Select(step, sys, cfg)
		if len(sel) != 1 {
			t.Fatalf("laziest-fair selected %d processes", len(sel))
		}
		p := sel[0]
		if last[p] >= 0 && step-last[p] > 2*sys.N() {
			t.Fatalf("process %d starved for %d steps", p, step-last[p])
		}
		last[p] = step
	}
}

func TestLaziestFairTieBreaks(t *testing.T) {
	// On the first step every process is tied at last = -1: the daemon
	// must prefer a disabled process, then lower degree, then lower id.
	// On a star with the hub's value changed, the leaves are enabled
	// (they see the hub) and the hub is enabled too — so with everyone
	// enabled the pick falls to the lowest-degree, lowest-id process;
	// with everyone disabled (zero config) it picks the lowest-degree,
	// lowest-id among the disabled.
	star := graph.Star(5) // process 0 is the hub (degree 4)
	spec := &model.Spec{
		Name: "T",
		Comm: []model.VarSpec{{Name: "X", Domain: model.FixedDomain(4)}},
		Actions: []model.Action{{
			Name:  "copy",
			Guard: func(c *model.Ctx) bool { return c.Comm(0) != c.NeighborComm(1, 0) },
			Apply: func(c *model.Ctx) { c.SetComm(0, c.NeighborComm(1, 0)) },
		}},
	}
	sys, err := model.NewSystem(star, spec, nil)
	if err != nil {
		t.Fatal(err)
	}

	// All disabled: ties broken by degree then id — a leaf, process 1.
	sel := NewLaziestFair().Select(0, sys, model.NewZeroConfig(sys))
	if len(sel) != 1 || sel[0] != 1 {
		t.Fatalf("all-disabled tie-break selected %v, want [1]", sel)
	}

	// Hub differs: every leaf (and the hub) is enabled except none —
	// prefer a *disabled* process if one exists. Setting one leaf equal
	// to the hub disables it; it must win the tie.
	cfg := model.NewZeroConfig(sys)
	cfg.Comm[0][0] = 2 // hub: leaves now see a conflict and are enabled
	cfg.Comm[3][0] = 2 // leaf 3 matches the hub: disabled
	// hub is enabled too (it reads leaf via port 1).
	sel = NewLaziestFair().Select(0, sys, cfg)
	if len(sel) != 1 || sel[0] != 3 {
		t.Fatalf("disabled-first tie-break selected %v, want [3]", sel)
	}
}

func TestByNameUnknown(t *testing.T) {
	if _, err := ByName("nope", 1); err == nil {
		t.Fatal("unknown scheduler accepted")
	}
}

func TestByNameAliases(t *testing.T) {
	for _, alias := range []string{"sync", "distributed", "adversarial"} {
		if _, err := ByName(alias, 1); err != nil {
			t.Fatalf("alias %q rejected: %v", alias, err)
		}
	}
}
