package sched

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/model"
	"repro/internal/rng"
)

// legacyLaziestFair is a test-local copy of the historical LaziestFair
// selection: a two-pass O(n) scan over a last-selected vector. The live
// implementation replaced it with a warmup bucket plus FIFO ring; this
// reference pins the selection semantics the rewrite must preserve.
type legacyLaziestFair struct {
	last []int
}

func (s *legacyLaziestFair) pick(step int, sys *model.System, enabled func(p int) bool) int {
	n := sys.N()
	for len(s.last) < n {
		s.last = append(s.last, -1)
	}
	minLast := s.last[0]
	for p := 1; p < n; p++ {
		if s.last[p] < minLast {
			minLast = s.last[p]
		}
	}
	chosen, chosenDisabled, chosenDeg := -1, false, 0
	for p := 0; p < n; p++ {
		if s.last[p] != minLast {
			continue
		}
		disabled := !enabled(p)
		deg := sys.Graph().Degree(p)
		if chosen < 0 ||
			(disabled != chosenDisabled && disabled) ||
			(disabled == chosenDisabled && deg < chosenDeg) {
			chosen, chosenDisabled, chosenDeg = p, disabled, deg
		}
	}
	s.last[chosen] = step
	return chosen
}

// TestLaziestFairMatchesReferenceScan drives the ring-based daemon and
// the historical two-pass scan over the same live computations (several
// random systems, several seeds, well past the n-step warmup where the
// tie-break engages) and requires identical selection sequences.
func TestLaziestFairMatchesReferenceScan(t *testing.T) {
	t.Parallel()
	for si, sys := range propertySystems(t) {
		for seed := uint64(1); seed <= 3; seed++ {
			sc := NewLaziestFair()
			ref := &legacyLaziestFair{}
			cfg := model.NewRandomConfig(sys, rng.New(seed))
			steps := 4*sys.N() + 40
			for step := 0; step < steps; step++ {
				sel := sc.Select(step, sys, cfg)
				want := ref.pick(step, sys, func(p int) bool { return model.Enabled(sys, cfg, p) })
				if len(sel) != 1 || sel[0] != want {
					t.Fatalf("system %d seed %d step %d: ring picks %v, reference picks %d",
						si, seed, step, sel, want)
				}
				stepAll(sys, cfg, sel, step, seed)
			}
		}
	}
}

// TestLaziestFairMatchesReferenceOnFixpoint covers the all-disabled
// warmup ties (every process permanently tied at "never selected" until
// chosen) where the disabled/degree/id tie-break does the selecting.
func TestLaziestFairMatchesReferenceOnFixpoint(t *testing.T) {
	t.Parallel()
	r := rng.New(11)
	g := graph.RandomConnectedGNP(17, 0.3, r)
	sys, err := model.NewSystem(g, &model.Spec{
		Name: "T",
		Comm: []model.VarSpec{{Name: "X", Domain: model.FixedDomain(4)}},
		Actions: []model.Action{{
			Name:  "copy",
			Guard: func(c *model.Ctx) bool { return c.Comm(0) != c.NeighborComm(1, 0) },
			Apply: func(c *model.Ctx) { c.SetComm(0, c.NeighborComm(1, 0)) },
		}},
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	cfg := model.NewZeroConfig(sys) // a fixpoint: everyone stays disabled
	sc := NewLaziestFair()
	ref := &legacyLaziestFair{}
	for step := 0; step < 3*sys.N()+10; step++ {
		sel := sc.Select(step, sys, cfg)
		want := ref.pick(step, sys, func(p int) bool { return model.Enabled(sys, cfg, p) })
		if len(sel) != 1 || sel[0] != want {
			t.Fatalf("step %d: ring picks %v, reference picks %d", step, sel, want)
		}
	}
}
