// Package core implements the paper's primary contribution as runnable
// machinery: the communication-efficiency measures of Section 3 applied
// to executions of silent self-stabilizing protocols.
//
// A Run drives a system from an (adversarial) initial configuration under
// a chosen scheduler until the configuration becomes communication-silent
// (Definition 3), then optionally keeps executing for a suffix of rounds
// during which the per-process read sets R_p are re-recorded. The
// resulting RunResult exposes:
//
//   - whether and when silence was reached (steps and rounds, the paper's
//     convergence bounds are stated in rounds);
//   - the run's witnessed k-efficiency (Definition 4) and communication
//     complexity in bits (Definition 5);
//   - the suffix read sets, witnessing ♦-(x,k)-stability (Definition 9):
//     StableProcesses(1) is the number of processes that communicated
//     with at most one neighbor during the entire post-silence suffix.
package core

import (
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/trace"
)

// RunOptions configures a Run.
type RunOptions struct {
	// Scheduler drives the computation (required).
	Scheduler model.Scheduler
	// Seed determines all randomness of the run (protocol coin flips).
	Seed uint64
	// MaxSteps bounds the search for silence (required, > 0).
	MaxSteps int
	// CheckEvery is the silence-check period in steps (default 1: exact
	// detection; larger values trade detection precision for speed).
	CheckEvery int
	// SuffixRounds, when > 0 and silence is reached, keeps the system
	// running for that many further rounds while recording the suffix
	// read sets used for stability measurements.
	SuffixRounds int
	// Legitimate, when non-nil, is evaluated on the silent configuration
	// (protocol-specific legitimacy predicate).
	Legitimate func(*model.System, *model.Config) bool
	// Events receives the run's diagnostic events (silence detection,
	// fault injections, recovery episodes) tagged with the cell/trial
	// identity the scope carries. The zero Scope is a free no-op.
	Events obs.Scope
}

// RunResult reports one execution.
type RunResult struct {
	// Silent reports whether a communication-silent configuration was
	// reached within MaxSteps.
	Silent bool
	// StepsToSilence and RoundsToSilence are measured at the first
	// silence check that succeeded.
	StepsToSilence  int
	RoundsToSilence int
	// LegitimateAtSilence holds the predicate value at silence (false if
	// no predicate was supplied or silence was not reached).
	LegitimateAtSilence bool
	// Report carries the trace metrics. If SuffixRounds > 0 the suffix
	// fields cover exactly the post-silence window.
	Report trace.Report
	// Final is the configuration at the end of the run.
	Final *model.Config
}

// Run executes a system to silence and measures it. cfg0 is not mutated.
// It is the one-shot convenience form of Runner.Run on a throwaway
// Runner; loops over many trials should reuse one Runner instead.
func Run(sys *model.System, cfg0 *model.Config, opts RunOptions) (*RunResult, error) {
	rn := NewRunner()
	rn.InitialConfig(sys).CopyFrom(cfg0)
	res := &RunResult{}
	if err := rn.Run(sys, opts, res); err != nil {
		return nil, err
	}
	return res, nil
}

// Convergence summarizes many runs of the same protocol family.
type Convergence struct {
	// Runs is the number of executions.
	Runs int
	// Converged is how many reached silence within budget.
	Converged int
	// LegitimateAll reports whether every run reached a legitimate silent
	// configuration: a run that fails to converge falsifies it just like a
	// silent-but-illegitimate one. With zero runs it is vacuously true
	// (the empty conjunction), so callers must check Runs > 0 before
	// reading it as a positive verdict.
	LegitimateAll bool
	// MaxRounds and MaxSteps are maxima over converged runs.
	MaxRounds int
	MaxSteps  int
	// MaxKEfficiency is the largest witnessed k-efficiency.
	MaxKEfficiency int
}

// NewConvergence returns an empty summary ready for Add (LegitimateAll
// starts vacuously true).
func NewConvergence() Convergence { return Convergence{LegitimateAll: true} }

// Add folds one run into the summary. It is the streaming form of
// Aggregate: results folded one at a time need never be retained.
func (c *Convergence) Add(r *RunResult) {
	c.Runs++
	if !r.Silent {
		c.LegitimateAll = false
		return
	}
	c.Converged++
	if !r.LegitimateAtSilence {
		c.LegitimateAll = false
	}
	if r.RoundsToSilence > c.MaxRounds {
		c.MaxRounds = r.RoundsToSilence
	}
	if r.StepsToSilence > c.MaxSteps {
		c.MaxSteps = r.StepsToSilence
	}
	if r.Report.KEfficiency > c.MaxKEfficiency {
		c.MaxKEfficiency = r.Report.KEfficiency
	}
}

// Aggregate folds run results into a Convergence summary.
func Aggregate(results []*RunResult) Convergence {
	agg := NewConvergence()
	for _, r := range results {
		agg.Add(r)
	}
	return agg
}
