// Package core implements the paper's primary contribution as runnable
// machinery: the communication-efficiency measures of Section 3 applied
// to executions of silent self-stabilizing protocols.
//
// A Run drives a system from an (adversarial) initial configuration under
// a chosen scheduler until the configuration becomes communication-silent
// (Definition 3), then optionally keeps executing for a suffix of rounds
// during which the per-process read sets R_p are re-recorded. The
// resulting RunResult exposes:
//
//   - whether and when silence was reached (steps and rounds, the paper's
//     convergence bounds are stated in rounds);
//   - the run's witnessed k-efficiency (Definition 4) and communication
//     complexity in bits (Definition 5);
//   - the suffix read sets, witnessing ♦-(x,k)-stability (Definition 9):
//     StableProcesses(1) is the number of processes that communicated
//     with at most one neighbor during the entire post-silence suffix.
package core

import (
	"fmt"

	"repro/internal/model"
	"repro/internal/trace"
)

// RunOptions configures a Run.
type RunOptions struct {
	// Scheduler drives the computation (required).
	Scheduler model.Scheduler
	// Seed determines all randomness of the run (protocol coin flips).
	Seed uint64
	// MaxSteps bounds the search for silence (required, > 0).
	MaxSteps int
	// CheckEvery is the silence-check period in steps (default 1: exact
	// detection; larger values trade detection precision for speed).
	CheckEvery int
	// SuffixRounds, when > 0 and silence is reached, keeps the system
	// running for that many further rounds while recording the suffix
	// read sets used for stability measurements.
	SuffixRounds int
	// Legitimate, when non-nil, is evaluated on the silent configuration
	// (protocol-specific legitimacy predicate).
	Legitimate func(*model.System, *model.Config) bool
}

// RunResult reports one execution.
type RunResult struct {
	// Silent reports whether a communication-silent configuration was
	// reached within MaxSteps.
	Silent bool
	// StepsToSilence and RoundsToSilence are measured at the first
	// silence check that succeeded.
	StepsToSilence  int
	RoundsToSilence int
	// LegitimateAtSilence holds the predicate value at silence (false if
	// no predicate was supplied or silence was not reached).
	LegitimateAtSilence bool
	// Report carries the trace metrics. If SuffixRounds > 0 the suffix
	// fields cover exactly the post-silence window.
	Report trace.Report
	// Final is the configuration at the end of the run.
	Final *model.Config
}

// Run executes a system to silence and measures it. cfg0 is not mutated.
func Run(sys *model.System, cfg0 *model.Config, opts RunOptions) (*RunResult, error) {
	if opts.Scheduler == nil {
		return nil, fmt.Errorf("core: RunOptions.Scheduler is required")
	}
	if opts.MaxSteps <= 0 {
		return nil, fmt.Errorf("core: RunOptions.MaxSteps must be positive")
	}
	rec := trace.NewRecorder(sys.N())
	sim, err := model.NewSimulator(sys, cfg0, opts.Scheduler, opts.Seed, rec)
	if err != nil {
		return nil, err
	}
	checkEvery := opts.CheckEvery
	if checkEvery < 1 {
		checkEvery = 1
	}
	silent, err := sim.RunUntilSilent(opts.MaxSteps, checkEvery)
	if err != nil {
		return nil, err
	}
	res := &RunResult{
		Silent:          silent,
		StepsToSilence:  sim.Steps(),
		RoundsToSilence: sim.Rounds(),
	}
	if silent && opts.Legitimate != nil {
		res.LegitimateAtSilence = opts.Legitimate(sys, sim.Config())
	}
	if silent && opts.SuffixRounds > 0 {
		rec.MarkSuffix()
		sim.RunRounds(opts.SuffixRounds)
	}
	res.Report = rec.Report()
	res.Final = sim.Config()
	return res, nil
}

// Convergence summarizes many runs of the same protocol family.
type Convergence struct {
	// Runs is the number of executions.
	Runs int
	// Converged is how many reached silence within budget.
	Converged int
	// LegitimateAll reports whether every silent run was legitimate.
	LegitimateAll bool
	// MaxRounds and MaxSteps are maxima over converged runs.
	MaxRounds int
	MaxSteps  int
	// MaxKEfficiency is the largest witnessed k-efficiency.
	MaxKEfficiency int
}

// Aggregate folds run results into a Convergence summary.
func Aggregate(results []*RunResult) Convergence {
	agg := Convergence{Runs: len(results), LegitimateAll: true}
	for _, r := range results {
		if !r.Silent {
			agg.LegitimateAll = agg.LegitimateAll && false
			continue
		}
		agg.Converged++
		if !r.LegitimateAtSilence {
			agg.LegitimateAll = false
		}
		if r.RoundsToSilence > agg.MaxRounds {
			agg.MaxRounds = r.RoundsToSilence
		}
		if r.StepsToSilence > agg.MaxSteps {
			agg.MaxSteps = r.StepsToSilence
		}
		if r.Report.KEfficiency > agg.MaxKEfficiency {
			agg.MaxKEfficiency = r.Report.KEfficiency
		}
	}
	return agg
}
