package core

import (
	"fmt"

	"repro/internal/fault"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/trace"
)

// This file is the execution side of the adversary subsystem
// (internal/fault): RunFaulted drives one trial during which an
// adversary strikes according to a schedule — at start, at a fixed step,
// periodically, or at each silence point — and measures every recovery
// episode (rounds to re-silence, containment radius). Injections mutate
// the live configuration mid-run; cache soundness is restored by marking
// every corrupted process dirty via model.Simulator.MarkDirty, the exact
// dirty rule Step applies to moving processes, so the incremental
// enabled/silence caches never observe a stale verdict.

// Episode reports one injection and the recovery that followed it.
type Episode struct {
	// Step is the step index at which the injection happened (0 for an
	// at-start injection).
	Step int
	// Faulted is the number of corrupted processes.
	Faulted int
	// Recovered reports whether the system re-reached silence after this
	// injection and before the next one (or the end of the run).
	Recovered bool
	// RecoveryRounds is the number of rounds from the injection to the
	// episode's silence point; for an unrecovered episode it is the
	// rounds observed until the episode was cut off (by the next
	// injection or the step budget).
	RecoveryRounds int
	// Radius is the containment radius of the episode: the maximum graph
	// distance from the faulted set to any process that fired an action
	// during recovery (0 when corrections never left the faulted set).
	Radius int
	// BallRadius is the fault ball's own radius when the adversary
	// reports one (fault.Cluster does), -1 otherwise.
	BallRadius int
}

// FaultResult reports one injected trial: the overall run outcome (the
// embedded RunResult describes the final recovery, exactly as a plain
// Run would) plus per-episode recovery statistics.
type FaultResult struct {
	RunResult
	// Injections is the number of injections performed.
	Injections int
	// Recovered counts the episodes that ended in silence.
	Recovered int
	// Episodes holds per-injection statistics, in injection order. The
	// slice is reused across trials on the same result buffer.
	Episodes []Episode
}

// AllRecovered reports whether every injection was followed by a return
// to silence (and at least one injection happened).
func (r *FaultResult) AllRecovered() bool {
	return r.Injections > 0 && r.Recovered == r.Injections
}

// MaxRecoveryRounds returns the largest per-episode recovery round count.
func (r *FaultResult) MaxRecoveryRounds() int {
	m := 0
	for i := range r.Episodes {
		if r.Episodes[i].RecoveryRounds > m {
			m = r.Episodes[i].RecoveryRounds
		}
	}
	return m
}

// MaxRadius returns the largest per-episode containment radius.
func (r *FaultResult) MaxRadius() int {
	m := 0
	for i := range r.Episodes {
		if r.Episodes[i].Radius > m {
			m = r.Episodes[i].Radius
		}
	}
	return m
}

// faultRun is the runner's reusable injected-trial state.
type faultRun struct {
	obs     faultObserver
	contain fault.Containment
	faulted []int
}

// faultObserver forwards every engine event to the trace recorder
// (keeping Report byte-identical to an uninjected run's) and, while a
// recovery episode is open, folds each fired action into the episode's
// containment radius.
type faultObserver struct {
	rec     *trace.Recorder
	contain *fault.Containment
	active  bool
}

var _ model.Observer = (*faultObserver)(nil)

func (o *faultObserver) StepBegin(step int, selected []int) { o.rec.StepBegin(step, selected) }

func (o *faultObserver) Read(step, p, q int, kind model.VarKind, v, bits int) {
	o.rec.Read(step, p, q, kind, v, bits)
}

func (o *faultObserver) ActionFired(step, p, a int) {
	o.rec.ActionFired(step, p, a)
	if o.active && a >= 0 {
		o.contain.Moved(p)
	}
}

func (o *faultObserver) CommWrite(step, p, v, old, new int) { o.rec.CommWrite(step, p, v, old, new) }

func (o *faultObserver) StepEnd(step int, selected []int, roundCompleted bool) {
	o.rec.StepEnd(step, selected, roundCompleted)
}

// ballRadiusReporter is implemented by adversaries that know the radius
// of the fault region they just corrupted (fault.Cluster).
type ballRadiusReporter interface{ LastBallRadius() int }

// Adversary returns the adversary for a trial, caching by key exactly
// like Scheduler caches by name: when the runner's cached adversary was
// built under the same key it is reused (RunFaulted rewinds it to the
// trial seed, equivalent to a fresh construction); otherwise mk builds
// and caches a new one. The key must uniquely determine mk's behavior —
// use name plus parameters, e.g. "uniform/4".
func (r *Runner) Adversary(key string, mk func() fault.Adversary) fault.Adversary {
	if r.adv != nil && key != "" && r.advKey == key {
		return r.adv
	}
	r.adv = mk()
	r.advKey = key
	return r.adv
}

// RunFaulted executes one trial from the runner's initial-configuration
// buffer (see InitialConfig) under a fault plan: plan.Adversary is
// rewound to opts.Seed and strikes at the instants plan.Schedule
// selects; after the final injection the run continues to silence (or
// MaxSteps), and the embedded RunResult describes that final recovery
// exactly as Run would. Per-injection recovery statistics land in
// res.Episodes.
//
// A plan scheduled at-start with a single injection is byte-equivalent
// to corrupting the initial buffer by hand and calling Run: the same
// draw stream, the same execution, the same report. Mid-run injections
// mutate the live configuration between steps; every corrupted process
// is marked dirty (Simulator.MarkDirty) so the incremental
// enabled/silence caches stay sound. When the system reaches silence
// while injections are still pending, the next injection fires at the
// silence point regardless of schedule kind; an episode still unrecovered
// when the next injection is due is closed as unrecovered.
//
// Like Run, res never aliases runner-owned memory and the
// initial-configuration buffer is consumed.
func (r *Runner) RunFaulted(sys *model.System, opts RunOptions, plan fault.Plan, res *FaultResult) error {
	if plan.Adversary == nil {
		return fmt.Errorf("core: RunFaulted without an adversary")
	}
	if opts.Scheduler == nil {
		return fmt.Errorf("core: RunOptions.Scheduler is required")
	}
	if opts.MaxSteps <= 0 {
		return fmt.Errorf("core: RunOptions.MaxSteps must be positive")
	}
	if r.sys != sys || r.cfg == nil {
		return fmt.Errorf("core: Runner.RunFaulted without an initial configuration for this system (call InitialConfig first)")
	}
	if r.rec == nil {
		r.rec = trace.NewRecorder(sys.N())
	} else {
		r.rec.Reset(sys.N())
	}
	adv := plan.Adversary
	adv.Reset(opts.Seed)
	total := plan.Schedule.Injections()

	fr := &r.fr
	fr.obs.rec = r.rec
	fr.obs.contain = &fr.contain
	fr.obs.active = false
	res.Injections, res.Recovered = 0, 0
	res.Episodes = res.Episodes[:0]

	if plan.Schedule.Kind == fault.KindAtStart {
		// The start injection corrupts the initial buffer before the
		// simulator adopts it; Reset re-derives every cache, so no dirty
		// marking is needed.
		fr.faulted = adv.Inject(sys, r.cfg, fr.faulted[:0])
	}
	if err := r.sim.Reset(sys, r.cfg, opts.Scheduler, opts.Seed, &fr.obs); err != nil {
		return err
	}
	checkEvery := opts.CheckEvery
	if checkEvery < 1 {
		checkEvery = 1
	}

	var roundsAtInjection int
	var ep Episode
	openEpisode := func() {
		fr.contain.Begin(sys.Graph(), fr.faulted)
		ep = Episode{Step: r.sim.Steps(), Faulted: len(fr.faulted), BallRadius: -1}
		if br, ok := adv.(ballRadiusReporter); ok {
			ep.BallRadius = br.LastBallRadius()
		}
		roundsAtInjection = r.sim.Rounds()
		fr.obs.active = true
		res.Injections++
		opts.Events.Emit(obs.Event{
			Kind: obs.KindInjection, Step: ep.Step,
			Count: ep.Faulted, Radius: ep.BallRadius,
		})
	}
	closeEpisode := func(recovered bool) {
		ep.Recovered = recovered
		ep.RecoveryRounds = r.sim.Rounds() - roundsAtInjection
		ep.Radius = fr.contain.Radius()
		if recovered {
			res.Recovered++
		}
		res.Episodes = append(res.Episodes, ep)
		fr.obs.active = false
		opts.Events.Emit(obs.Event{
			Kind: obs.KindRecovery, Step: r.sim.Steps(), Round: ep.RecoveryRounds,
			Count: ep.Faulted, Recovered: recovered, Radius: ep.Radius,
		})
	}
	injectLive := func() {
		fr.faulted = adv.Inject(sys, r.sim.Config(), fr.faulted[:0])
		for _, p := range fr.faulted {
			r.sim.MarkDirty(p)
		}
		openEpisode()
	}
	if plan.Schedule.Kind == fault.KindAtStart {
		openEpisode()
	}

	finalSilent := false
	for {
		limit := opts.MaxSteps
		if res.Injections < total {
			if due := plan.Schedule.NextStep(r.sim.Steps()); due >= 0 && due < limit {
				limit = due
			}
		}
		silent, err := r.sim.RunUntilSilent(limit, checkEvery)
		if err != nil {
			return err
		}
		if silent {
			opts.Events.Emit(obs.Event{Kind: obs.KindSilence, Step: r.sim.Steps(), Round: r.sim.Rounds()})
			if fr.obs.active {
				closeEpisode(true)
			}
			if res.Injections < total {
				injectLive()
				continue
			}
			finalSilent = true
			break
		}
		if r.sim.Steps() >= opts.MaxSteps {
			if fr.obs.active {
				closeEpisode(false)
			}
			break
		}
		// Paused at a scheduled mid-run injection instant.
		if fr.obs.active {
			closeEpisode(false)
		}
		injectLive()
	}

	res.Silent = finalSilent
	res.StepsToSilence = r.sim.Steps()
	res.RoundsToSilence = r.sim.Rounds()
	res.LegitimateAtSilence = false
	if finalSilent && opts.Legitimate != nil {
		res.LegitimateAtSilence = opts.Legitimate(sys, r.sim.Config())
	}
	if finalSilent && opts.SuffixRounds > 0 {
		r.rec.MarkSuffix()
		r.sim.RunRounds(opts.SuffixRounds)
	}
	r.rec.ReportInto(&res.Report)
	if res.Final == nil {
		res.Final = model.NewZeroConfig(sys)
	}
	res.Final.CopyFrom(r.sim.Config())
	return nil
}

// RunRandomFaulted is RunFaulted from a uniformly random initial
// configuration drawn from opts.Seed, exactly as RunRandom draws it.
func (r *Runner) RunRandomFaulted(sys *model.System, opts RunOptions, plan fault.Plan, res *FaultResult) error {
	cfg := r.InitialConfig(sys)
	r.initSrc.Reseed(opts.Seed)
	model.RandomizeConfig(sys, cfg, r.initRand)
	return r.RunFaulted(sys, opts, plan, res)
}
