package core

import (
	"fmt"

	"repro/internal/fault"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/rng"
	"repro/internal/trace"
)

// This file is the execution side of the adversary subsystem
// (internal/fault): RunFaulted drives one trial during which an
// adversary strikes according to a schedule — at start, at a fixed step,
// periodically, or at each silence point — and measures every recovery
// episode (rounds to re-silence, containment radius). Injections mutate
// the live configuration mid-run; cache soundness is restored by marking
// every corrupted process dirty via model.Simulator.MarkDirty, the exact
// dirty rule Step applies to moving processes, so the incremental
// enabled/silence caches never observe a stale verdict.
//
// Plans may also (or only) carry a churn adversary: topology mutations
// fired on their own schedule against a runner-owned dynamic copy of
// the system (model.System.MutableCopy, reset between trials). A churn
// firing opens a recovery episode exactly like a state injection, with
// the affected process set as the containment source; cache soundness
// is owned by model.Simulator.ApplyTopology.

// Episode reports one disturbance — a state injection, a topology churn
// firing, or both at the same instant — and the recovery that followed.
type Episode struct {
	// Step is the step index at which the disturbance happened (0 for an
	// at-start injection).
	Step int
	// Faulted is the number of corrupted processes (0 for a pure
	// topology episode).
	Faulted int
	// Churned is the number of processes affected by the episode's
	// topology churn (0 for a pure state-fault episode).
	Churned int
	// Recovered reports whether the system re-reached silence after this
	// injection and before the next one (or the end of the run).
	Recovered bool
	// RecoveryRounds is the number of rounds from the injection to the
	// episode's silence point; for an unrecovered episode it is the
	// rounds observed until the episode was cut off (by the next
	// injection or the step budget).
	RecoveryRounds int
	// Radius is the containment radius of the episode: the maximum graph
	// distance from the faulted set to any process that fired an action
	// during recovery (0 when corrections never left the faulted set).
	Radius int
	// BallRadius is the fault ball's own radius when the adversary
	// reports one (fault.Cluster does), -1 otherwise.
	BallRadius int
}

// FaultResult reports one injected trial: the overall run outcome (the
// embedded RunResult describes the final recovery, exactly as a plain
// Run would) plus per-episode recovery statistics.
type FaultResult struct {
	RunResult
	// Injections is the number of state injections performed.
	Injections int
	// ChurnEvents is the number of topology churn firings performed.
	ChurnEvents int
	// Recovered counts the episodes that ended in silence.
	Recovered int
	// Episodes holds per-disturbance statistics, in firing order. The
	// slice is reused across trials on the same result buffer.
	Episodes []Episode
}

// AllRecovered reports whether every disturbance was followed by a
// return to silence (and at least one disturbance happened). For plans
// without churn this is exactly "every injection recovered".
func (r *FaultResult) AllRecovered() bool {
	return len(r.Episodes) > 0 && r.Recovered == len(r.Episodes)
}

// MaxRecoveryRounds returns the largest per-episode recovery round count.
func (r *FaultResult) MaxRecoveryRounds() int {
	m := 0
	for i := range r.Episodes {
		if r.Episodes[i].RecoveryRounds > m {
			m = r.Episodes[i].RecoveryRounds
		}
	}
	return m
}

// MaxRadius returns the largest per-episode containment radius.
func (r *FaultResult) MaxRadius() int {
	m := 0
	for i := range r.Episodes {
		if r.Episodes[i].Radius > m {
			m = r.Episodes[i].Radius
		}
	}
	return m
}

// faultRun is the runner's reusable injected-trial state.
type faultRun struct {
	obs     faultObserver
	contain fault.Containment
	faulted []int
	churned []int
	all     []int // faulted ∪ churned, the episode's containment sources
}

// faultObserver forwards every engine event to the trace recorder
// (keeping Report byte-identical to an uninjected run's) and, while a
// recovery episode is open, folds each fired action into the episode's
// containment radius.
type faultObserver struct {
	rec     *trace.Recorder
	contain *fault.Containment
	active  bool
}

var _ model.Observer = (*faultObserver)(nil)

func (o *faultObserver) StepBegin(step int, selected []int) { o.rec.StepBegin(step, selected) }

func (o *faultObserver) Read(step, p, q int, kind model.VarKind, v, bits int) {
	o.rec.Read(step, p, q, kind, v, bits)
}

func (o *faultObserver) ActionFired(step, p, a int) {
	o.rec.ActionFired(step, p, a)
	if o.active && a >= 0 {
		o.contain.Moved(p)
	}
}

func (o *faultObserver) CommWrite(step, p, v, old, new int) { o.rec.CommWrite(step, p, v, old, new) }

func (o *faultObserver) StepEnd(step int, selected []int, roundCompleted bool) {
	o.rec.StepEnd(step, selected, roundCompleted)
}

// ballRadiusReporter is implemented by adversaries that know the radius
// of the fault region they just corrupted (fault.Cluster).
type ballRadiusReporter interface{ LastBallRadius() int }

// Adversary returns the adversary for a trial, caching by key exactly
// like Scheduler caches by name: when the runner's cached adversary was
// built under the same key it is reused (RunFaulted rewinds it to the
// trial seed, equivalent to a fresh construction); otherwise mk builds
// and caches a new one. The key must uniquely determine mk's behavior —
// use name plus parameters, e.g. "uniform/4".
func (r *Runner) Adversary(key string, mk func() fault.Adversary) fault.Adversary {
	if r.adv != nil && key != "" && r.advKey == key {
		return r.adv
	}
	r.adv = mk()
	r.advKey = key
	return r.adv
}

// ChurnAdversary returns the churn adversary for a trial, caching by
// key exactly like Adversary. The key must uniquely determine mk's
// behavior — use name plus parameters, e.g. "churn:rewire/2".
func (r *Runner) ChurnAdversary(key string, mk func() fault.ChurnAdversary) fault.ChurnAdversary {
	if r.churn != nil && key != "" && r.churnKey == key {
		return r.churn
	}
	r.churn = mk()
	r.churnKey = key
	return r.churn
}

// dynamicSystem returns the runner-owned dynamic copy of sys with the
// base topology restored, rebuilding it only when the base system
// changes (the worker's cell-affine job order makes that rare).
func (r *Runner) dynamicSystem(sys *model.System) *model.System {
	if r.dynBase != sys || r.dynSys == nil {
		r.dynBase = sys
		r.dynSys = sys.MutableCopy()
	} else {
		r.dynSys.ResetDynamic()
	}
	return r.dynSys
}

// RunFaulted executes one trial from the runner's initial-configuration
// buffer (see InitialConfig) under a fault plan: plan.Adversary is
// rewound to opts.Seed and strikes at the instants plan.Schedule
// selects; after the final injection the run continues to silence (or
// MaxSteps), and the embedded RunResult describes that final recovery
// exactly as Run would. Per-injection recovery statistics land in
// res.Episodes.
//
// A plan scheduled at-start with a single injection is byte-equivalent
// to corrupting the initial buffer by hand and calling Run: the same
// draw stream, the same execution, the same report. Mid-run injections
// mutate the live configuration between steps; every corrupted process
// is marked dirty (Simulator.MarkDirty) so the incremental
// enabled/silence caches stay sound. When the system reaches silence
// while injections are still pending, the next injection fires at the
// silence point regardless of schedule kind; an episode still unrecovered
// when the next injection is due is closed as unrecovered.
//
// Like Run, res never aliases runner-owned memory and the
// initial-configuration buffer is consumed.
//
// When plan.Churn is set the trial executes on the runner's dynamic
// copy of sys (reset to the base topology first): churn firings follow
// plan.ChurnSchedule with randomness derived from opts.Seed under the
// "churn" label, so adding churn to a plan never perturbs the state
// adversary's or the scheduler's draw streams. A step at which both
// schedules fire disturbs topology first, then state, and opens one
// combined episode.
func (r *Runner) RunFaulted(sys *model.System, opts RunOptions, plan fault.Plan, res *FaultResult) error {
	hasAdv, hasChurn := plan.Adversary != nil, plan.Churn != nil
	if !hasAdv && !hasChurn {
		return fmt.Errorf("core: RunFaulted without an adversary or churn adversary")
	}
	if opts.Scheduler == nil {
		return fmt.Errorf("core: RunOptions.Scheduler is required")
	}
	if opts.MaxSteps <= 0 {
		return fmt.Errorf("core: RunOptions.MaxSteps must be positive")
	}
	if r.sys != sys || r.cfg == nil {
		return fmt.Errorf("core: Runner.RunFaulted without an initial configuration for this system (call InitialConfig first)")
	}
	if r.rec == nil {
		r.rec = trace.NewRecorder(sys.N())
	} else {
		r.rec.Reset(sys.N())
	}
	adv := plan.Adversary
	totalFault := 0
	if hasAdv {
		adv.Reset(opts.Seed)
		totalFault = plan.Schedule.Injections()
	}
	runSys := sys
	totalChurn := 0
	if hasChurn {
		runSys = r.dynamicSystem(sys)
		plan.Churn.Reset(rng.DeriveString(opts.Seed, "churn"))
		totalChurn = plan.ChurnSchedule.Injections()
	}

	fr := &r.fr
	fr.obs.rec = r.rec
	fr.obs.contain = &fr.contain
	fr.obs.active = false
	res.Injections, res.ChurnEvents, res.Recovered = 0, 0, 0
	res.Episodes = res.Episodes[:0]
	fr.faulted, fr.churned = fr.faulted[:0], fr.churned[:0]

	atStartFault := hasAdv && plan.Schedule.Kind == fault.KindAtStart
	atStartChurn := hasChurn && plan.ChurnSchedule.Kind == fault.KindAtStart
	if atStartFault {
		// The start injection corrupts the initial buffer before the
		// simulator adopts it; Reset re-derives every cache, so no dirty
		// marking is needed. (Still on the base topology and domains —
		// byte-identical to the pre-churn at-start path.)
		fr.faulted = adv.Inject(sys, r.cfg, fr.faulted[:0])
	}
	if err := r.sim.Reset(runSys, r.cfg, opts.Scheduler, opts.Seed, &fr.obs); err != nil {
		return err
	}
	checkEvery := opts.CheckEvery
	if checkEvery < 1 {
		checkEvery = 1
	}

	var roundsAtInjection int
	var ep Episode
	openEpisode := func() {
		fr.all = append(append(fr.all[:0], fr.faulted...), fr.churned...)
		fr.contain.Begin(runSys.Graph(), fr.all)
		ep = Episode{Step: r.sim.Steps(), Faulted: len(fr.faulted), Churned: len(fr.churned), BallRadius: -1}
		if len(fr.faulted) > 0 {
			if br, ok := adv.(ballRadiusReporter); ok {
				ep.BallRadius = br.LastBallRadius()
			}
		}
		roundsAtInjection = r.sim.Rounds()
		fr.obs.active = true
		if len(fr.faulted) > 0 {
			res.Injections++
			opts.Events.Emit(obs.Event{
				Kind: obs.KindInjection, Step: ep.Step,
				Count: ep.Faulted, Radius: ep.BallRadius,
			})
		}
	}
	closeEpisode := func(recovered bool) {
		ep.Recovered = recovered
		ep.RecoveryRounds = r.sim.Rounds() - roundsAtInjection
		ep.Radius = fr.contain.Radius()
		if recovered {
			res.Recovered++
		}
		res.Episodes = append(res.Episodes, ep)
		fr.obs.active = false
		opts.Events.Emit(obs.Event{
			Kind: obs.KindRecovery, Step: r.sim.Steps(), Round: ep.RecoveryRounds,
			Count: ep.Faulted + ep.Churned, Recovered: recovered, Radius: ep.Radius,
		})
	}
	fireChurn := func() {
		fr.churned = plan.Churn.Churn(&r.sim, fr.churned[:0])
		res.ChurnEvents++
		opts.Events.Emit(obs.Event{
			Kind: obs.KindTopology, Step: r.sim.Steps(),
			Count: len(fr.churned), Radius: -1,
		})
	}
	// disturb fires the due sources (topology first, then state) and
	// opens their combined episode.
	disturb := func(churnNow, faultNow bool) {
		if churnNow {
			fireChurn()
		} else {
			fr.churned = fr.churned[:0]
		}
		if faultNow {
			fr.faulted = adv.Inject(runSys, r.sim.Config(), fr.faulted[:0])
			for _, p := range fr.faulted {
				r.sim.MarkDirty(p)
			}
		} else {
			fr.faulted = fr.faulted[:0]
		}
		openEpisode()
	}
	if atStartChurn {
		fireChurn()
	}
	if atStartFault || atStartChurn {
		if !atStartFault {
			fr.faulted = fr.faulted[:0]
		}
		openEpisode()
	}

	finalSilent := false
	for {
		faultPending := hasAdv && res.Injections < totalFault
		churnPending := hasChurn && res.ChurnEvents < totalChurn
		limit := opts.MaxSteps
		faultDue, churnDue := -1, -1
		if faultPending {
			if faultDue = plan.Schedule.NextStep(r.sim.Steps()); faultDue >= 0 && faultDue < limit {
				limit = faultDue
			}
		}
		if churnPending {
			if churnDue = plan.ChurnSchedule.NextStep(r.sim.Steps()); churnDue >= 0 && churnDue < limit {
				limit = churnDue
			}
		}
		silent, err := r.sim.RunUntilSilent(limit, checkEvery)
		if err != nil {
			return err
		}
		if silent {
			opts.Events.Emit(obs.Event{Kind: obs.KindSilence, Step: r.sim.Steps(), Round: r.sim.Rounds()})
			if fr.obs.active {
				closeEpisode(true)
			}
			if faultPending || churnPending {
				// Pending disturbances fire at the silence point
				// regardless of schedule kind (the adversary does not
				// wait for a finished computation).
				disturb(churnPending, faultPending)
				continue
			}
			finalSilent = true
			break
		}
		if r.sim.Steps() >= opts.MaxSteps {
			if fr.obs.active {
				closeEpisode(false)
			}
			break
		}
		// Paused at a scheduled mid-run disturbance instant.
		if fr.obs.active {
			closeEpisode(false)
		}
		disturb(churnPending && churnDue == r.sim.Steps(), faultPending && faultDue == r.sim.Steps())
	}

	res.Silent = finalSilent
	res.StepsToSilence = r.sim.Steps()
	res.RoundsToSilence = r.sim.Rounds()
	res.LegitimateAtSilence = false
	if finalSilent && opts.Legitimate != nil {
		res.LegitimateAtSilence = opts.Legitimate(runSys, r.sim.Config())
	}
	if finalSilent && opts.SuffixRounds > 0 {
		r.rec.MarkSuffix()
		r.sim.RunRounds(opts.SuffixRounds)
	}
	r.rec.ReportInto(&res.Report)
	if res.Final == nil {
		res.Final = model.NewZeroConfig(sys)
	}
	res.Final.CopyFrom(r.sim.Config())
	return nil
}

// RunRandomFaulted is RunFaulted from a uniformly random initial
// configuration drawn from opts.Seed, exactly as RunRandom draws it.
func (r *Runner) RunRandomFaulted(sys *model.System, opts RunOptions, plan fault.Plan, res *FaultResult) error {
	cfg := r.InitialConfig(sys)
	r.initSrc.Reseed(opts.Seed)
	model.RandomizeConfig(sys, cfg, r.initRand)
	return r.RunFaulted(sys, opts, plan, res)
}
