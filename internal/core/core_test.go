package core

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/model"
	"repro/internal/protocols/coloring"
	"repro/internal/rng"
	"repro/internal/sched"
)

func testRun(t *testing.T, opts RunOptions) (*RunResult, error) {
	t.Helper()
	g := graph.Cycle(6)
	sys, err := model.NewSystem(g, coloring.Spec(), nil)
	if err != nil {
		t.Fatal(err)
	}
	cfg := model.NewRandomConfig(sys, rng.New(opts.Seed))
	return Run(sys, cfg, opts)
}

func TestRunRequiresScheduler(t *testing.T) {
	if _, err := testRun(t, RunOptions{MaxSteps: 10}); err == nil {
		t.Fatal("missing scheduler accepted")
	}
}

func TestRunRequiresMaxSteps(t *testing.T) {
	if _, err := testRun(t, RunOptions{Scheduler: sched.NewSynchronous()}); err == nil {
		t.Fatal("zero MaxSteps accepted")
	}
}

func TestRunConvergesAndMeasures(t *testing.T) {
	res, err := testRun(t, RunOptions{
		Scheduler:    sched.NewRandomSubset(5),
		Seed:         5,
		MaxSteps:     100000,
		SuffixRounds: 10,
		Legitimate:   coloring.IsLegitimate,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Silent || !res.LegitimateAtSilence {
		t.Fatalf("silent=%v legit=%v", res.Silent, res.LegitimateAtSilence)
	}
	if res.Report.KEfficiency > 1 {
		t.Fatalf("k-efficiency %d", res.Report.KEfficiency)
	}
	if res.Report.SuffixRounds < 10 {
		t.Fatalf("suffix rounds = %d, want >= 10", res.Report.SuffixRounds)
	}
	if res.Final == nil {
		t.Fatal("no final configuration")
	}
	if res.StepsToSilence <= 0 && res.RoundsToSilence < 0 {
		t.Fatal("timing not recorded")
	}
}

func TestRunBudgetExhausted(t *testing.T) {
	// With a tiny budget on a conflicted start, silence is typically not
	// reached; Run must report that without error.
	res, err := testRun(t, RunOptions{
		Scheduler: sched.NewCentralRandom(1),
		Seed:      1,
		MaxSteps:  1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Silent && res.StepsToSilence > 1 {
		t.Fatal("inconsistent result")
	}
}

func TestAggregate(t *testing.T) {
	results := []*RunResult{
		{Silent: true, LegitimateAtSilence: true, RoundsToSilence: 4, StepsToSilence: 40},
		{Silent: true, LegitimateAtSilence: true, RoundsToSilence: 7, StepsToSilence: 10},
		{Silent: false},
	}
	agg := Aggregate(results)
	if agg.Runs != 3 || agg.Converged != 2 {
		t.Fatalf("runs=%d converged=%d", agg.Runs, agg.Converged)
	}
	if agg.MaxRounds != 7 || agg.MaxSteps != 40 {
		t.Fatalf("max rounds=%d steps=%d", agg.MaxRounds, agg.MaxSteps)
	}
	if agg.LegitimateAll {
		t.Fatal("non-converged run should clear LegitimateAll")
	}
	agg2 := Aggregate(results[:2])
	if !agg2.LegitimateAll {
		t.Fatal("all-legitimate runs should keep LegitimateAll")
	}
}
