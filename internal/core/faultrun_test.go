package core

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/fault"
	"repro/internal/graph"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/protocols/coloring"
	"repro/internal/rng"
	"repro/internal/sched"
)

// TestRunFaultedAtStartMatchesRun: an at-start plan is byte-equivalent
// to corrupting the initial buffer by hand and calling Run — same draw
// stream, same execution, same report. This is the equivalence that
// keeps the rewired E15 table unchanged.
func TestRunFaultedAtStartMatchesRun(t *testing.T) {
	t.Parallel()
	systems := runnerTestSystems(t)
	mk := func(s uint64) model.Scheduler { return sched.NewRandomSubset(s) }
	rnWant, rnGot := NewRunner(), NewRunner()
	var got FaultResult
	for _, ts := range systems {
		snapshot := model.NewRandomConfig(ts.sys, rng.New(77))
		for _, k := range []int{1, ts.sys.N() / 2} {
			for seed := uint64(1); seed <= 3; seed++ {
				opts := RunOptions{
					Seed:       seed,
					MaxSteps:   200000,
					CheckEvery: 1,
					Legitimate: ts.legit,
				}

				// Manual path: legacy clone-then-corrupt, plain Run.
				corrupted := rnWant.InitialConfig(ts.sys)
				corrupted.CopyFrom(snapshot)
				manual := fault.NewUniform(k)
				manual.Reset(seed)
				manual.Inject(ts.sys, corrupted, nil)
				opts.Scheduler = rnWant.Scheduler("random-subset", seed, mk)
				var want RunResult
				if err := rnWant.Run(ts.sys, opts, &want); err != nil {
					t.Fatalf("%s k=%d seed %d: manual: %v", ts.name, k, seed, err)
				}

				// Fault path: the same corruption as an at-start plan.
				rnGot.InitialConfig(ts.sys).CopyFrom(snapshot)
				opts.Scheduler = rnGot.Scheduler("random-subset", seed, mk)
				err := rnGot.RunFaulted(ts.sys, opts, fault.Plan{
					Adversary: rnGot.Adversary(fmt.Sprintf("uniform/%d", k), func() fault.Adversary { return fault.NewUniform(k) }),
					Schedule:  fault.AtStart(),
				}, &got)
				if err != nil {
					t.Fatalf("%s k=%d seed %d: faulted: %v", ts.name, k, seed, err)
				}
				if !reflect.DeepEqual(want, got.RunResult) {
					t.Fatalf("%s k=%d seed %d: RunFaulted(at-start) differs from manual corrupt+Run:\nwant %+v\ngot  %+v",
						ts.name, k, seed, want, got.RunResult)
				}
				if got.Injections != 1 || len(got.Episodes) != 1 {
					t.Fatalf("%s k=%d seed %d: %d injections / %d episodes, want 1/1",
						ts.name, k, seed, got.Injections, len(got.Episodes))
				}
				ep := got.Episodes[0]
				if ep.Step != 0 || ep.Faulted != k {
					t.Fatalf("%s k=%d seed %d: episode %+v, want Step=0 Faulted=%d", ts.name, k, seed, ep, k)
				}
				if ep.Recovered != want.Silent || (ep.Recovered && ep.RecoveryRounds != want.RoundsToSilence) {
					t.Fatalf("%s k=%d seed %d: episode %+v inconsistent with run (silent=%v rounds=%d)",
						ts.name, k, seed, ep, want.Silent, want.RoundsToSilence)
				}
			}
		}
	}
}

// TestRunFaultedOnSilenceEpisodes: an on-silence plan performs exactly
// the planned number of injections, each episode recovers in order, and
// the final configuration is silent by the from-scratch oracle.
func TestRunFaultedOnSilenceEpisodes(t *testing.T) {
	t.Parallel()
	systems := runnerTestSystems(t)
	mk := func(s uint64) model.Scheduler { return sched.NewRandomSubset(s) }
	rn := NewRunner()
	var res FaultResult
	const episodes = 3
	for _, ts := range systems {
		diam, err := ts.sys.Graph().Diameter()
		if err != nil {
			t.Fatal(err)
		}
		for seed := uint64(1); seed <= 3; seed++ {
			err := rn.RunRandomFaulted(ts.sys, RunOptions{
				Scheduler:  rn.Scheduler("random-subset", seed, mk),
				Seed:       seed,
				MaxSteps:   400000,
				CheckEvery: 1,
				Legitimate: ts.legit,
			}, fault.Plan{
				Adversary: rn.Adversary("cluster-test", func() fault.Adversary { return fault.NewCluster(3) }),
				Schedule:  fault.OnSilence(episodes),
			}, &res)
			if err != nil {
				t.Fatalf("%s seed %d: %v", ts.name, seed, err)
			}
			if res.Injections != episodes || len(res.Episodes) != episodes {
				t.Fatalf("%s seed %d: %d injections / %d episodes, want %d",
					ts.name, seed, res.Injections, len(res.Episodes), episodes)
			}
			if !res.AllRecovered() || !res.Silent {
				t.Fatalf("%s seed %d: not all episodes recovered: %+v", ts.name, seed, res.Episodes)
			}
			oracle, err := model.CommSilent(ts.sys, res.Final)
			if err != nil {
				t.Fatal(err)
			}
			if !oracle {
				t.Fatalf("%s seed %d: final configuration not silent by the oracle", ts.name, seed)
			}
			lastStep := -1
			for i, ep := range res.Episodes {
				if ep.Step < lastStep {
					t.Fatalf("%s seed %d: episode %d at step %d before previous %d", ts.name, seed, i, ep.Step, lastStep)
				}
				lastStep = ep.Step
				if ep.Radius < 0 || ep.Radius > diam {
					t.Fatalf("%s seed %d: episode %d radius %d outside [0,%d]", ts.name, seed, i, ep.Radius, diam)
				}
				if ep.BallRadius < 0 || ep.BallRadius > diam {
					t.Fatalf("%s seed %d: episode %d ball radius %d outside [0,%d]", ts.name, seed, i, ep.BallRadius, diam)
				}
				if ep.Faulted != 3 {
					t.Fatalf("%s seed %d: episode %d faulted %d, want 3", ts.name, seed, i, ep.Faulted)
				}
			}
		}
	}
}

// TestRunFaultedMidRunOracle: a periodic mid-run schedule must end in a
// configuration the from-scratch silence oracle confirms, and report as
// many injections as the step budget allowed.
func TestRunFaultedMidRunOracle(t *testing.T) {
	t.Parallel()
	sys, err := model.NewSystem(graph.Cycle(9), coloring.Spec(), nil)
	if err != nil {
		t.Fatal(err)
	}
	mk := func(s uint64) model.Scheduler { return sched.NewRandomSubset(s) }
	rn := NewRunner()
	var res FaultResult
	for seed := uint64(1); seed <= 5; seed++ {
		err := rn.RunRandomFaulted(sys, RunOptions{
			Scheduler:  rn.Scheduler("random-subset", seed, mk),
			Seed:       seed,
			MaxSteps:   400000,
			CheckEvery: 1,
		}, fault.Plan{
			Adversary: rn.Adversary("comm-test", func() fault.Adversary { return fault.NewCommOnly(2) }),
			Schedule:  fault.Every(25, 3),
		}, &res)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !res.Silent {
			t.Fatalf("seed %d: no final silence", seed)
		}
		if res.Injections != 3 {
			t.Fatalf("seed %d: %d injections, want 3", seed, res.Injections)
		}
		oracle, err := model.CommSilent(sys, res.Final)
		if err != nil {
			t.Fatal(err)
		}
		if !oracle {
			t.Fatalf("seed %d: final configuration not silent by the oracle", seed)
		}
	}
}

// TestFaultedTrialLoopZeroAlloc is the injected-path counterpart of
// TestTrialLoopZeroAlloc: a complete steady-state injected trial —
// scheduler and adversary reset, random initial configuration,
// recorder+simulator reset, repeated injection and recovery to silence,
// ReportInto, final-config copy — allocates nothing beyond the amortized
// round-boundary append. The trial carries a no-op event scope (which
// the injection/recovery/silence emissions all route through), so the
// observation plumbing is part of the 0 allocs/op contract.
func TestFaultedTrialLoopZeroAlloc(t *testing.T) {
	sys, err := model.NewSystem(graph.Cycle(9), coloring.Spec(), nil)
	if err != nil {
		t.Fatal(err)
	}
	mk := func(s uint64) model.Scheduler { return sched.NewRandomSubset(s) }
	rn := NewRunner()
	var res FaultResult
	seed := uint64(0)
	trial := func() {
		seed++
		opts := RunOptions{
			Scheduler:  rn.Scheduler("random-subset", seed, mk),
			Seed:       seed,
			MaxSteps:   400000,
			CheckEvery: 1,
			Events:     obs.Scope{Obs: obs.Nop{}, Cell: 0, Key: "zero-alloc", Trial: int(seed)},
		}
		plan := fault.Plan{
			Adversary: rn.Adversary("uniform/3", func() fault.Adversary { return fault.NewUniform(3) }),
			Schedule:  fault.OnSilence(2),
		}
		if err := rn.RunRandomFaulted(sys, opts, plan, &res); err != nil {
			t.Fatal(err)
		}
		if !res.Silent || res.Injections != 2 {
			t.Fatal("trial did not run both episodes to silence")
		}
	}
	for i := 0; i < 25; i++ {
		trial()
	}
	if avg := testing.AllocsPerRun(100, trial); avg != 0 {
		t.Fatalf("steady-state injected trial loop allocates %.2f allocs/op, want 0", avg)
	}
}

// BenchmarkFaultedTrialLoop measures one complete injected trial (reset
// → converge → inject at silence → recover → report) on the reusable
// Runner.
func BenchmarkFaultedTrialLoop(b *testing.B) {
	sys, err := model.NewSystem(graph.Cycle(9), coloring.Spec(), nil)
	if err != nil {
		b.Fatal(err)
	}
	mk := func(s uint64) model.Scheduler { return sched.NewRandomSubset(s) }
	rn := NewRunner()
	var res FaultResult
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		seed := uint64(i)%64 + 1
		err := rn.RunRandomFaulted(sys, RunOptions{
			Scheduler: rn.Scheduler("random-subset", seed, mk),
			Seed:      seed, MaxSteps: 400000, CheckEvery: 1,
		}, fault.Plan{
			Adversary: rn.Adversary("uniform/3", func() fault.Adversary { return fault.NewUniform(3) }),
			Schedule:  fault.OnSilence(2),
		}, &res)
		if err != nil {
			b.Fatal(err)
		}
	}
}
