package core

import (
	"fmt"

	"repro/internal/bitset"
	"repro/internal/model"
	"repro/internal/rng"
	"repro/internal/trace"
)

// BatchOptions configures one lockstep batch of adversarial trials. It
// is RunOptions without the per-trial fields: the seed comes per lane,
// the scheduler is built (or reset) per lane from Sched/SchedName, and
// events are not emitted here — the engine's batched cell loop
// synthesizes the per-trial event stream at drain time, in trial order,
// from the returned results.
type BatchOptions struct {
	// SchedName and Sched name and build the per-lane scheduler from the
	// lane's trial seed (both required; the name keys the per-lane
	// scheduler cache exactly like Runner.Scheduler).
	SchedName string
	Sched     func(uint64) model.Scheduler
	// MaxSteps bounds each lane's search for silence (required, > 0).
	MaxSteps int
	// CheckEvery is the per-lane silence-check period (default 1).
	CheckEvery int
	// SuffixRounds and Legitimate are RunOptions' fields, applied per
	// lane at its silence point.
	SuffixRounds int
	Legitimate   func(*model.System, *model.Config) bool
}

// batchLane is the per-trial state of one lockstep lane: everything a
// trial cannot share — its configuration view, simulator bookkeeping,
// recorder, scheduler and seed streams — while the step arena and the
// silence probe live once per BatchRunner in the shared StepScratch.
type batchLane struct {
	rec       *trace.Recorder
	sim       model.Simulator
	schedName string
	sched     model.Scheduler
	initSrc   rng.SplitMix
	initRand  *rng.Rand
}

func (ln *batchLane) scheduler(name string, seed uint64, mk func(uint64) model.Scheduler) model.Scheduler {
	if ln.sched != nil && name != "" && ln.schedName == name {
		if rs, ok := ln.sched.(resettableScheduler); ok {
			rs.Reset(seed)
			return ln.sched
		}
	}
	ln.sched = mk(seed)
	ln.schedName = name
	return ln.sched
}

// BatchRunner advances a batch of B independent trials of one cell in
// lockstep over shared immutable topology: per-lane configurations live
// trials-major in one contiguous struct-of-arrays block (NewConfigBatch),
// the per-step execution arena and orbit probe are shared across lanes
// (StepScratch), and the still-running lanes are tracked in a bitset
// word (64 trials per word) that the super-step loop walks with NextSet.
// Lanes that converge early retire raggedly — report, final-config copy,
// suffix recording — without stalling the rest of the word.
//
// Every lane is an exact replica of Runner.RunRandom's per-trial
// computation on lane-local state, so results are bit-identical to the
// unbatched path for the same seeds, at any batch width. Like Runner, a
// BatchRunner is not safe for concurrent use; the engine builds one per
// worker.
type BatchRunner struct {
	sys     *model.System
	scratch *model.StepScratch

	lanes  []*batchLane
	cfgs   []*model.Config // trials-major SoA lane configurations
	rands  []*rng.Rand     // rands[l] wraps lanes[l].initSrc
	active *bitset.Set     // lanes still searching for silence
}

// NewBatchRunner returns an empty BatchRunner; lanes and buffers bind
// lazily on first use and are reused across batches and cells.
func NewBatchRunner() *BatchRunner {
	return &BatchRunner{scratch: model.NewStepScratch()}
}

// bind sizes the runner for a batch of b lanes over sys, reusing every
// buffer when the system is unchanged and the capacity suffices.
func (r *BatchRunner) bind(sys *model.System, b int) {
	if len(r.lanes) < b {
		for len(r.lanes) < b {
			ln := &batchLane{}
			ln.initRand = rng.FromSource(&ln.initSrc)
			r.lanes = append(r.lanes, ln)
		}
		r.active = bitset.New(len(r.lanes))
		r.sys = nil // lane configs must be rebuilt at the new width
	}
	if r.sys != sys {
		r.sys = sys
		r.cfgs = model.NewConfigBatch(sys, len(r.lanes))
		if r.rands == nil || len(r.rands) < len(r.lanes) {
			r.rands = make([]*rng.Rand, len(r.lanes))
		}
		for l, ln := range r.lanes {
			r.rands[l] = ln.initRand
		}
	}
}

// RunRandomBatch executes len(seeds) adversarial trials in lockstep and
// fills res trial by trial: res[l] is exactly the result Runner.RunRandom
// would produce for seeds[l] (res buffers are reused across batches like
// Runner.Run's). The system must be static — lanes share it, and a
// dynamic system's topology mutations could not be lane-local.
func (r *BatchRunner) RunRandomBatch(sys *model.System, opts BatchOptions, seeds []uint64, res []RunResult) error {
	nb := len(seeds)
	switch {
	case nb == 0:
		return nil
	case len(res) != nb:
		return fmt.Errorf("core: RunRandomBatch with %d seeds but %d result slots", nb, len(res))
	case opts.Sched == nil:
		return fmt.Errorf("core: BatchOptions.Sched is required")
	case opts.MaxSteps <= 0:
		return fmt.Errorf("core: BatchOptions.MaxSteps must be positive")
	case sys.Dynamic():
		return fmt.Errorf("core: lockstep batching requires a static system (dynamic topologies run unbatched)")
	}
	checkEvery := opts.CheckEvery
	if checkEvery < 1 {
		checkEvery = 1
	}
	r.bind(sys, nb)

	// Draw every lane's initial configuration: per-lane streams reseeded
	// exactly like RunRandom, domain tables walked once for the batch.
	for l := 0; l < nb; l++ {
		r.lanes[l].initSrc.Reseed(seeds[l])
	}
	model.RandomizeConfigBatch(sys, r.cfgs[:nb], r.rands[:nb])

	r.active.Clear()
	for l := 0; l < nb; l++ {
		ln := r.lanes[l]
		if ln.rec == nil {
			ln.rec = trace.NewRecorder(sys.N())
		} else {
			ln.rec.Reset(sys.N())
		}
		sched := ln.scheduler(opts.SchedName, seeds[l], opts.Sched)
		if err := ln.sim.ResetShared(sys, r.cfgs[l], sched, seeds[l], ln.rec, r.scratch); err != nil {
			return fmt.Errorf("core: batch lane %d: %w", l, err)
		}
		r.active.Add(l)
	}

	// RunUntilSilent checks the initial configuration before stepping;
	// already-silent lanes retire before the first super-step.
	for l := 0; l < nb; l++ {
		silent, err := r.lanes[l].sim.SilentNow()
		if err != nil {
			return fmt.Errorf("core: batch lane %d: %w", l, err)
		}
		if silent {
			r.retire(l, true, opts, &res[l])
		}
	}

	// Super-step loop: every still-active lane advances one step per
	// sweep, checking silence on its own CheckEvery grid; each lane's
	// step/check/retire sequence is exactly Runner.Run's, only
	// interleaved across lanes.
	for !r.active.Empty() {
		for l := r.active.NextSet(0); l >= 0; l = r.active.NextSet(l + 1) {
			sim := &r.lanes[l].sim
			if sim.Steps() >= opts.MaxSteps {
				silent, err := sim.SilentNow()
				if err != nil {
					return fmt.Errorf("core: batch lane %d: %w", l, err)
				}
				r.retire(l, silent, opts, &res[l])
				continue
			}
			sim.Step()
			if sim.Steps()%checkEvery == 0 {
				silent, err := sim.SilentNow()
				if err != nil {
					return fmt.Errorf("core: batch lane %d: %w", l, err)
				}
				if silent {
					r.retire(l, true, opts, &res[l])
				}
			}
		}
	}
	return nil
}

// retire finalizes lane l into out — steps/rounds at the stopping
// point, legitimacy on the silent configuration, suffix recording,
// report and final-config copy, in exactly Runner.Run's order — and
// clears its active bit so the super-step loop stops advancing it.
func (r *BatchRunner) retire(l int, silent bool, opts BatchOptions, out *RunResult) {
	ln := r.lanes[l]
	out.Silent = silent
	out.StepsToSilence = ln.sim.Steps()
	out.RoundsToSilence = ln.sim.Rounds()
	out.LegitimateAtSilence = false
	if silent && opts.Legitimate != nil {
		out.LegitimateAtSilence = opts.Legitimate(r.sys, ln.sim.Config())
	}
	if silent && opts.SuffixRounds > 0 {
		ln.rec.MarkSuffix()
		ln.sim.RunRounds(opts.SuffixRounds)
	}
	ln.rec.ReportInto(&out.Report)
	if out.Final == nil {
		out.Final = model.NewZeroConfig(r.sys)
	}
	out.Final.CopyFrom(ln.sim.Config())
	r.active.Remove(l)
}
