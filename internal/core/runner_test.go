package core

import (
	"reflect"
	"testing"

	"repro/internal/graph"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/protocols/coloring"
	"repro/internal/protocols/mis"
	"repro/internal/rng"
	"repro/internal/sched"
)

// runnerTestSystems builds a small heterogeneous suite: different graphs,
// protocols, and state shapes, so runner reuse is exercised across
// rebinds.
func runnerTestSystems(t *testing.T) []struct {
	name  string
	sys   *model.System
	legit func(*model.System, *model.Config) bool
} {
	t.Helper()
	colSys, err := model.NewSystem(graph.Cycle(9), coloring.Spec(), nil)
	if err != nil {
		t.Fatal(err)
	}
	baseSys, err := model.NewSystem(graph.Star(6), coloring.BaselineSpec(), nil)
	if err != nil {
		t.Fatal(err)
	}
	g := graph.Grid(3, 3)
	misSys, err := mis.NewSystem(g, mis.Spec(g.MaxDegree()+1), graph.GreedyLocalColoring(g))
	if err != nil {
		t.Fatal(err)
	}
	return []struct {
		name  string
		sys   *model.System
		legit func(*model.System, *model.Config) bool
	}{
		{"coloring-cycle9", colSys, coloring.IsLegitimate},
		{"coloring-baseline-star6", baseSys, coloring.IsLegitimate},
		{"mis-grid3x3", misSys, mis.IsLegitimate},
	}
}

// TestRunnerMatchesRun is the pooled/unpooled equivalence at the run
// level: one Runner reused across systems, schedulers and seeds must
// produce results deep-equal to the one-shot Run path (which builds a
// fresh recorder, simulator and scheduler per call).
func TestRunnerMatchesRun(t *testing.T) {
	t.Parallel()
	systems := runnerTestSystems(t)
	schedulers := []struct {
		name string
		mk   func(uint64) model.Scheduler
	}{
		{"random-subset", func(s uint64) model.Scheduler { return sched.NewRandomSubset(s) }},
		{"synchronous", func(uint64) model.Scheduler { return sched.NewSynchronous() }},
		{"central-rr", func(uint64) model.Scheduler { return sched.NewCentralRoundRobin() }},
		{"laziest-fair", func(uint64) model.Scheduler { return sched.NewLaziestFair() }},
	}
	rn := NewRunner()
	var res RunResult // reused across every trial below
	for _, ts := range systems {
		for _, sc := range schedulers {
			for seed := uint64(1); seed <= 3; seed++ {
				opts := RunOptions{
					Seed:         seed,
					MaxSteps:     200000,
					CheckEvery:   1,
					SuffixRounds: 4,
					Legitimate:   ts.legit,
				}

				opts.Scheduler = sc.mk(seed)
				initial := model.NewRandomConfig(ts.sys, rng.New(seed))
				want, err := Run(ts.sys, initial, opts)
				if err != nil {
					t.Fatalf("%s/%s/%d: one-shot: %v", ts.name, sc.name, seed, err)
				}

				opts.Scheduler = rn.Scheduler(sc.name, seed, sc.mk)
				if err := rn.RunRandom(ts.sys, opts, &res); err != nil {
					t.Fatalf("%s/%s/%d: runner: %v", ts.name, sc.name, seed, err)
				}
				if !reflect.DeepEqual(*want, res) {
					t.Fatalf("%s/%s/%d: runner result differs from one-shot Run:\nwant %+v\ngot  %+v",
						ts.name, sc.name, seed, *want, res)
				}
			}
		}
	}
}

// TestRunnerResultsDoNotAliasRunner: a materialized result must survive
// the runner's next trial untouched.
func TestRunnerResultsDoNotAliasRunner(t *testing.T) {
	t.Parallel()
	systems := runnerTestSystems(t)
	sys := systems[0].sys
	mk := func(s uint64) model.Scheduler { return sched.NewRandomSubset(s) }
	rn := NewRunner()

	run := func(seed uint64) *RunResult {
		res := &RunResult{}
		err := rn.RunRandom(sys, RunOptions{
			Scheduler: rn.Scheduler("random-subset", seed, mk),
			Seed:      seed, MaxSteps: 200000, SuffixRounds: 2,
		}, res)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	first := run(7)
	snapshot := *first
	snapshot.Final = first.Final.Clone()
	snapshot.Report.ReadSetSizes = append([]int(nil), first.Report.ReadSetSizes...)
	snapshot.Report.SuffixReadSetSizes = append([]int(nil), first.Report.SuffixReadSetSizes...)

	run(8) // second trial on the same runner
	if !first.Final.Equal(snapshot.Final) {
		t.Fatal("first trial's Final mutated by the runner's second trial")
	}
	if !reflect.DeepEqual(first.Report, snapshot.Report) {
		t.Fatal("first trial's Report mutated by the runner's second trial")
	}
}

// TestTrialLoopZeroAlloc is the tentpole acceptance check: a complete
// steady-state pooled trial — scheduler reset, random initial
// configuration, recorder+simulator reset, run to silence, suffix
// recording, ReportInto, final-config copy — allocates nothing. The
// trial carries a no-op event scope: observation plumbing is part of
// the 0 allocs/op contract.
func TestTrialLoopZeroAlloc(t *testing.T) {
	sys, err := model.NewSystem(graph.Cycle(9), coloring.Spec(), nil)
	if err != nil {
		t.Fatal(err)
	}
	mk := func(s uint64) model.Scheduler { return sched.NewRandomSubset(s) }
	rn := NewRunner()
	var res RunResult
	seed := uint64(0)
	trial := func() {
		seed++
		opts := RunOptions{
			Scheduler:    rn.Scheduler("random-subset", seed, mk),
			Seed:         seed,
			MaxSteps:     200000,
			CheckEvery:   1,
			SuffixRounds: 2,
			Events:       obs.Scope{Obs: obs.Nop{}, Cell: 0, Key: "zero-alloc", Trial: int(seed)},
		}
		if err := rn.RunRandom(sys, opts, &res); err != nil {
			t.Fatal(err)
		}
		if !res.Silent {
			t.Fatal("trial did not converge")
		}
	}
	// Warm up: bind buffers, grow the round-boundary and report slices to
	// their steady-state capacity.
	for i := 0; i < 25; i++ {
		trial()
	}
	if avg := testing.AllocsPerRun(100, trial); avg != 0 {
		t.Fatalf("steady-state trial loop allocates %.2f allocs/op, want 0", avg)
	}
}

// BenchmarkTrialLoop measures one complete pooled trial (reset → run to
// silence → report) on the reusable Runner; BenchmarkTrialLoopOneShot is
// the same workload on the one-shot Run path for comparison.
func BenchmarkTrialLoop(b *testing.B) {
	sys, err := model.NewSystem(graph.Cycle(9), coloring.Spec(), nil)
	if err != nil {
		b.Fatal(err)
	}
	mk := func(s uint64) model.Scheduler { return sched.NewRandomSubset(s) }
	rn := NewRunner()
	var res RunResult
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		seed := uint64(i)%64 + 1
		err := rn.RunRandom(sys, RunOptions{
			Scheduler: rn.Scheduler("random-subset", seed, mk),
			Seed:      seed, MaxSteps: 200000, CheckEvery: 1,
		}, &res)
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTrialLoopOneShot(b *testing.B) {
	sys, err := model.NewSystem(graph.Cycle(9), coloring.Spec(), nil)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		seed := uint64(i)%64 + 1
		initial := model.NewRandomConfig(sys, rng.New(seed))
		_, err := Run(sys, initial, RunOptions{
			Scheduler: sched.NewRandomSubset(seed),
			Seed:      seed, MaxSteps: 200000, CheckEvery: 1,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}
