package core

import (
	"reflect"
	"testing"

	"repro/internal/graph"
	"repro/internal/model"
	"repro/internal/protocols/coloring"
	"repro/internal/sched"
)

// TestBatchRunnerMatchesRunner is the lockstep determinism contract at
// the core level: for every batch width — including 1, a partial word,
// a full bitset word and one past it — each lane's result is deep-equal
// to the unbatched Runner's for the same seed, across systems and
// schedulers, with one BatchRunner reused throughout.
func TestBatchRunnerMatchesRunner(t *testing.T) {
	t.Parallel()
	systems := runnerTestSystems(t)
	schedulers := []struct {
		name string
		mk   func(uint64) model.Scheduler
	}{
		{"random-subset", func(s uint64) model.Scheduler { return sched.NewRandomSubset(s) }},
		{"synchronous", func(uint64) model.Scheduler { return sched.NewSynchronous() }},
		{"central-rr", func(uint64) model.Scheduler { return sched.NewCentralRoundRobin() }},
		{"laziest-fair", func(uint64) model.Scheduler { return sched.NewLaziestFair() }},
	}
	widths := []int{1, 3, 64, 65}
	if testing.Short() {
		widths = []int{1, 3, 65}
	}
	br := NewBatchRunner()
	rn := NewRunner()
	for _, ts := range systems {
		for _, sc := range schedulers {
			for _, b := range widths {
				seeds := make([]uint64, b)
				for i := range seeds {
					seeds[i] = uint64(1000*b + i + 1)
				}
				opts := BatchOptions{
					SchedName:    sc.name,
					Sched:        sc.mk,
					MaxSteps:     200000,
					CheckEvery:   1,
					SuffixRounds: 3,
					Legitimate:   ts.legit,
				}
				got := make([]RunResult, b)
				if err := br.RunRandomBatch(ts.sys, opts, seeds, got); err != nil {
					t.Fatalf("%s/%s/b=%d: %v", ts.name, sc.name, b, err)
				}
				var want RunResult
				for i, seed := range seeds {
					err := rn.RunRandom(ts.sys, RunOptions{
						Scheduler:    rn.Scheduler(sc.name, seed, sc.mk),
						Seed:         seed,
						MaxSteps:     200000,
						CheckEvery:   1,
						SuffixRounds: 3,
						Legitimate:   ts.legit,
					}, &want)
					if err != nil {
						t.Fatalf("%s/%s/b=%d seed %d: unbatched: %v", ts.name, sc.name, b, seed, err)
					}
					if !reflect.DeepEqual(want, got[i]) {
						t.Fatalf("%s/%s/b=%d lane %d (seed %d): batched result differs from unbatched:\nwant %+v\ngot  %+v",
							ts.name, sc.name, b, i, seed, want, got[i])
					}
				}
			}
		}
	}
}

// TestBatchRunnerRaggedReuse: reusing one BatchRunner across shrinking
// and growing widths and across systems (stale lanes from a wider batch
// must not leak into a narrower one).
func TestBatchRunnerRaggedReuse(t *testing.T) {
	t.Parallel()
	systems := runnerTestSystems(t)
	mk := func(s uint64) model.Scheduler { return sched.NewRandomSubset(s) }
	br := NewBatchRunner()
	rn := NewRunner()
	seed := uint64(77)
	for _, b := range []int{8, 3, 8, 1, 5} {
		for _, ts := range systems {
			seeds := make([]uint64, b)
			for i := range seeds {
				seed++
				seeds[i] = seed
			}
			got := make([]RunResult, b)
			opts := BatchOptions{SchedName: "random-subset", Sched: mk, MaxSteps: 200000, CheckEvery: 1}
			if err := br.RunRandomBatch(ts.sys, opts, seeds, got); err != nil {
				t.Fatalf("%s/b=%d: %v", ts.name, b, err)
			}
			var want RunResult
			for i, s := range seeds {
				err := rn.RunRandom(ts.sys, RunOptions{
					Scheduler: rn.Scheduler("random-subset", s, mk),
					Seed:      s, MaxSteps: 200000, CheckEvery: 1,
				}, &want)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(want, got[i]) {
					t.Fatalf("%s/b=%d lane %d: differs after reuse", ts.name, b, i)
				}
			}
		}
	}
}

// TestBatchRunnerRejectsDynamic: lanes share the system, so a mutable
// topology cannot be batched.
func TestBatchRunnerRejectsDynamic(t *testing.T) {
	t.Parallel()
	sys, err := model.NewSystem(graph.Cycle(9), coloring.Spec(), nil)
	if err != nil {
		t.Fatal(err)
	}
	dyn := sys.MutableCopy()
	br := NewBatchRunner()
	opts := BatchOptions{
		SchedName: "random-subset",
		Sched:     func(s uint64) model.Scheduler { return sched.NewRandomSubset(s) },
		MaxSteps:  1000,
	}
	if err := br.RunRandomBatch(dyn, opts, []uint64{1, 2}, make([]RunResult, 2)); err == nil {
		t.Fatal("RunRandomBatch accepted a dynamic system")
	}
}

// TestBatchedTrialLoopZeroAlloc is the batched counterpart of
// TestTrialLoopZeroAlloc: a complete steady-state batch — per-lane
// reseed, batched randomize, recorder+simulator resets, lockstep run to
// silence, ragged retires with suffix recording and result fill —
// allocates nothing.
func TestBatchedTrialLoopZeroAlloc(t *testing.T) {
	sys, err := model.NewSystem(graph.Cycle(9), coloring.Spec(), nil)
	if err != nil {
		t.Fatal(err)
	}
	const b = 16
	br := NewBatchRunner()
	res := make([]RunResult, b)
	seeds := make([]uint64, b)
	seed := uint64(0)
	opts := BatchOptions{
		SchedName:    "random-subset",
		Sched:        func(s uint64) model.Scheduler { return sched.NewRandomSubset(s) },
		MaxSteps:     200000,
		CheckEvery:   1,
		SuffixRounds: 2,
		Legitimate:   coloring.IsLegitimate,
	}
	batch := func() {
		for i := range seeds {
			seed++
			seeds[i] = seed
		}
		if err := br.RunRandomBatch(sys, opts, seeds, res); err != nil {
			t.Fatal(err)
		}
		for i := range res {
			if !res[i].Silent {
				t.Fatal("batched trial did not converge")
			}
		}
	}
	// Warm up: bind lanes, grow report and round-boundary buffers to
	// steady-state capacity.
	for i := 0; i < 25; i++ {
		batch()
	}
	if avg := testing.AllocsPerRun(50, batch); avg != 0 {
		t.Fatalf("steady-state batched trial loop allocates %.2f allocs/op, want 0", avg)
	}
}

// BenchmarkBatchedTrials measures the complete lockstep trial pipeline
// at several batch widths on BenchmarkTrialLoop's workload (Cycle(9)
// coloring under the random-subset daemon, silence checked every step).
// ns/op is per TRIAL, not per batch, so the sub-benchmarks are directly
// comparable to each other and to BenchmarkTrialLoop; b=1 is the
// lockstep machinery running unbatched.
func BenchmarkBatchedTrials(b *testing.B) {
	sys, err := model.NewSystem(graph.Cycle(9), coloring.Spec(), nil)
	if err != nil {
		b.Fatal(err)
	}
	for _, width := range []int{1, 8, 16, 64} {
		b.Run("b="+itoa(width), func(b *testing.B) {
			br := NewBatchRunner()
			res := make([]RunResult, width)
			seeds := make([]uint64, width)
			opts := BatchOptions{
				SchedName:  "random-subset",
				Sched:      func(s uint64) model.Scheduler { return sched.NewRandomSubset(s) },
				MaxSteps:   200000,
				CheckEvery: 1,
			}
			b.ReportAllocs()
			seed := uint64(0)
			for i := 0; i < b.N; i += width {
				for k := range seeds {
					seeds[k] = seed%64 + 1
					seed++
				}
				if err := br.RunRandomBatch(sys, opts, seeds, res); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
