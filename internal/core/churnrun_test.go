package core

import (
	"reflect"
	"testing"

	"repro/internal/fault"
	"repro/internal/graph"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/protocols/coloring"
	"repro/internal/sched"
)

// TestRunChurnedEpisodes: a churn-only plan fires exactly the planned
// number of topology events, opens one pure-topology episode per firing
// (no state injections), recovers each, and — the plan's firing count
// being even for an alternating shape — ends in a configuration that is
// silent on the restored base topology by the from-scratch oracle.
func TestRunChurnedEpisodes(t *testing.T) {
	t.Parallel()
	systems := runnerTestSystems(t)
	mk := func(s uint64) model.Scheduler { return sched.NewRandomSubset(s) }
	rn := NewRunner()
	var res FaultResult
	const firings = 4
	for _, ts := range systems {
		for _, name := range []string{"cut", "crashjoin"} {
			for seed := uint64(1); seed <= 3; seed++ {
				err := rn.RunRandomFaulted(ts.sys, RunOptions{
					Scheduler:  rn.Scheduler("random-subset", seed, mk),
					Seed:       seed,
					MaxSteps:   400000,
					CheckEvery: 1,
					Legitimate: ts.legit,
				}, fault.Plan{
					Churn:         rn.ChurnAdversary("churn:"+name+"/2", func() fault.ChurnAdversary { a, _ := fault.ChurnByName(name, 2); return a }),
					ChurnSchedule: fault.OnSilence(firings),
				}, &res)
				if err != nil {
					t.Fatalf("%s %s seed %d: %v", ts.name, name, seed, err)
				}
				if res.ChurnEvents != firings || len(res.Episodes) != firings {
					t.Fatalf("%s %s seed %d: %d churn events / %d episodes, want %d",
						ts.name, name, seed, res.ChurnEvents, len(res.Episodes), firings)
				}
				if res.Injections != 0 {
					t.Fatalf("%s %s seed %d: %d injections in a churn-only plan", ts.name, name, seed, res.Injections)
				}
				if !res.AllRecovered() || !res.Silent {
					t.Fatalf("%s %s seed %d: not all episodes recovered: %+v", ts.name, name, seed, res.Episodes)
				}
				for i, ep := range res.Episodes {
					if ep.Faulted != 0 || ep.Churned == 0 {
						t.Fatalf("%s %s seed %d: episode %d = %+v, want Faulted=0 Churned>0", ts.name, name, seed, i, ep)
					}
					if ep.BallRadius != -1 {
						t.Fatalf("%s %s seed %d: episode %d reports ball radius %d without an adversary", ts.name, name, seed, i, ep.BallRadius)
					}
				}
				// Even alternating firing count: topology is back to base,
				// so the base-system oracle applies to the final config.
				oracle, err := model.CommSilent(ts.sys, res.Final)
				if err != nil {
					t.Fatal(err)
				}
				if !oracle {
					t.Fatalf("%s %s seed %d: final configuration not silent by the oracle", ts.name, name, seed)
				}
			}
		}
	}
}

// TestRunChurnedWithAdversary: churn and state faults on the same
// silence schedule fire together — one combined episode per silence
// point carrying both the corrupted and the topology-affected counts.
func TestRunChurnedWithAdversary(t *testing.T) {
	t.Parallel()
	systems := runnerTestSystems(t)
	mk := func(s uint64) model.Scheduler { return sched.NewRandomSubset(s) }
	rn := NewRunner()
	var res FaultResult
	for _, ts := range systems {
		for seed := uint64(1); seed <= 3; seed++ {
			err := rn.RunRandomFaulted(ts.sys, RunOptions{
				Scheduler:  rn.Scheduler("random-subset", seed, mk),
				Seed:       seed,
				MaxSteps:   400000,
				CheckEvery: 1,
			}, fault.Plan{
				Adversary:     rn.Adversary("uniform/2", func() fault.Adversary { return fault.NewUniform(2) }),
				Schedule:      fault.OnSilence(2),
				Churn:         rn.ChurnAdversary("churn:rewire/2", func() fault.ChurnAdversary { return fault.NewRewire(2) }),
				ChurnSchedule: fault.OnSilence(2),
			}, &res)
			if err != nil {
				t.Fatalf("%s seed %d: %v", ts.name, seed, err)
			}
			if res.Injections != 2 || res.ChurnEvents != 2 || len(res.Episodes) != 2 {
				t.Fatalf("%s seed %d: injections=%d churn=%d episodes=%d, want 2/2/2",
					ts.name, seed, res.Injections, res.ChurnEvents, len(res.Episodes))
			}
			if !res.Silent || !res.AllRecovered() {
				t.Fatalf("%s seed %d: combined episodes did not all recover", ts.name, seed)
			}
			for i, ep := range res.Episodes {
				if ep.Faulted != 2 || ep.Churned == 0 {
					t.Fatalf("%s seed %d: episode %d = %+v, want Faulted=2 Churned>0", ts.name, seed, i, ep)
				}
			}
		}
	}
}

// TestRunChurnedDeterministic: two independent runners produce
// deeply-equal results for the same churn plan and seed, and a runner
// rebound across systems reproduces its own earlier results (the
// dynamic-copy and churn-adversary caches rebuild cleanly).
func TestRunChurnedDeterministic(t *testing.T) {
	t.Parallel()
	systems := runnerTestSystems(t)
	mk := func(s uint64) model.Scheduler { return sched.NewRandomSubset(s) }
	run := func(rn *Runner, sys *model.System, seed uint64, res *FaultResult) {
		t.Helper()
		err := rn.RunRandomFaulted(sys, RunOptions{
			Scheduler:  rn.Scheduler("random-subset", seed, mk),
			Seed:       seed,
			MaxSteps:   400000,
			CheckEvery: 1,
		}, fault.Plan{
			Adversary:     rn.Adversary("uniform/2", func() fault.Adversary { return fault.NewUniform(2) }),
			Schedule:      fault.Every(30, 2),
			Churn:         rn.ChurnAdversary("churn:crashjoin/2", func() fault.ChurnAdversary { return fault.NewCrashJoin(2) }),
			ChurnSchedule: fault.OnSilence(2),
		}, res)
		if err != nil {
			t.Fatal(err)
		}
	}
	shared := NewRunner()
	var first []FaultResult
	for _, ts := range systems {
		var a, b FaultResult
		run(NewRunner(), ts.sys, 7, &a) // fresh runner per system
		run(shared, ts.sys, 7, &b)      // one runner rebound across systems
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("%s: fresh and shared runner diverge:\nfresh  %+v\nshared %+v", ts.name, a, b)
		}
		first = append(first, a)
	}
	// Second sweep with the shared runner: rebinding back to each system
	// must reproduce the first sweep exactly.
	for i, ts := range systems {
		var again FaultResult
		run(shared, ts.sys, 7, &again)
		if !reflect.DeepEqual(first[i], again) {
			t.Fatalf("%s: rebound runner diverges from its first run", ts.name)
		}
	}
}

// TestChurnTrialLoopZeroAlloc is the churn-path counterpart of
// TestFaultedTrialLoopZeroAlloc: a complete steady-state trial with
// both topology churn (crash/join on silence) and state injections —
// dynamic-topology reset, churn firings through ApplyTopology, episode
// bookkeeping, recovery to silence, report — allocates nothing.
func TestChurnTrialLoopZeroAlloc(t *testing.T) {
	sys, err := model.NewSystem(graph.Cycle(9), coloring.Spec(), nil)
	if err != nil {
		t.Fatal(err)
	}
	mk := func(s uint64) model.Scheduler { return sched.NewRandomSubset(s) }
	rn := NewRunner()
	var res FaultResult
	seed := uint64(0)
	trial := func() {
		seed++
		opts := RunOptions{
			Scheduler:  rn.Scheduler("random-subset", seed, mk),
			Seed:       seed,
			MaxSteps:   400000,
			CheckEvery: 1,
			Events:     obs.Scope{Obs: obs.Nop{}, Cell: 0, Key: "zero-alloc", Trial: int(seed)},
		}
		plan := fault.Plan{
			Adversary:     rn.Adversary("uniform/2", func() fault.Adversary { return fault.NewUniform(2) }),
			Schedule:      fault.OnSilence(2),
			Churn:         rn.ChurnAdversary("churn:crashjoin/2", func() fault.ChurnAdversary { return fault.NewCrashJoin(2) }),
			ChurnSchedule: fault.OnSilence(2),
		}
		if err := rn.RunRandomFaulted(sys, opts, plan, &res); err != nil {
			t.Fatal(err)
		}
		if !res.Silent || res.ChurnEvents != 2 || res.Injections != 2 {
			t.Fatal("trial did not run both combined episodes to silence")
		}
	}
	for i := 0; i < 25; i++ {
		trial()
	}
	if avg := testing.AllocsPerRun(100, trial); avg != 0 {
		t.Fatalf("steady-state churn trial loop allocates %.2f allocs/op, want 0", avg)
	}
}

// BenchmarkChurnTrialLoop measures one complete churned trial (dynamic
// reset → converge → crash 2 at silence → recover → rejoin → recover →
// report) on the reusable Runner.
func BenchmarkChurnTrialLoop(b *testing.B) {
	sys, err := model.NewSystem(graph.Cycle(9), coloring.Spec(), nil)
	if err != nil {
		b.Fatal(err)
	}
	mk := func(s uint64) model.Scheduler { return sched.NewRandomSubset(s) }
	rn := NewRunner()
	var res FaultResult
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		seed := uint64(i)%64 + 1
		err := rn.RunRandomFaulted(sys, RunOptions{
			Scheduler: rn.Scheduler("random-subset", seed, mk),
			Seed:      seed, MaxSteps: 400000, CheckEvery: 1,
		}, fault.Plan{
			Churn:         rn.ChurnAdversary("churn:crashjoin/2", func() fault.ChurnAdversary { return fault.NewCrashJoin(2) }),
			ChurnSchedule: fault.OnSilence(2),
		}, &res)
		if err != nil {
			b.Fatal(err)
		}
	}
}
