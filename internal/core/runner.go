package core

import (
	"fmt"

	"repro/internal/fault"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/rng"
	"repro/internal/trace"
)

// Runner is a reusable trial-execution context: one resettable recorder,
// simulator, scheduler slot and initial-configuration buffer that
// together make the steady-state trial loop — setup, run-to-silence,
// report — allocation-free.
// The experiment pool builds one Runner per worker and reuses it
// across every trial the worker executes; the free-standing Run keeps its
// one-shot semantics as a thin wrapper over a throwaway Runner.
//
// A Runner is NOT safe for concurrent use. Rebinding it to a different
// system reallocates the per-system buffers, so workers should process
// trials of one cell consecutively (the pool's job order does).
type Runner struct {
	rec *trace.Recorder
	sim model.Simulator

	sys *model.System // system the initial-config buffer is bound to
	cfg *model.Config // runner-owned initial configuration buffer

	schedName string
	sched     model.Scheduler

	advKey string
	adv    fault.Adversary

	churnKey string
	churn    fault.ChurnAdversary

	// dynSys is the runner-owned dynamic copy of dynBase, rebuilt only
	// when the base system changes and topology-reset between trials.
	dynBase *model.System
	dynSys  *model.System

	initSrc  rng.SplitMix
	initRand *rng.Rand

	// fr holds the reusable injected-trial state behind RunFaulted.
	fr faultRun
}

// NewRunner returns an empty Runner; buffers bind lazily on first use.
func NewRunner() *Runner {
	r := &Runner{}
	r.initRand = rng.FromSource(&r.initSrc)
	return r
}

// InitialConfig returns the runner-owned initial-configuration buffer
// bound to sys (rebuilt only when the system changes). Callers assemble
// the trial's initial configuration in it — model.RandomizeConfig, a
// Config.CopyFrom of a snapshot, fault injection — and then call Run,
// which adopts the buffer as the execution's live configuration.
func (r *Runner) InitialConfig(sys *model.System) *model.Config {
	if r.sys != sys || r.cfg == nil {
		r.sys = sys
		r.cfg = model.NewZeroConfig(sys)
	}
	return r.cfg
}

// resettableScheduler matches sched.Resettable structurally (core does
// not import internal/sched).
type resettableScheduler interface{ Reset(seed uint64) }

// Scheduler returns the scheduler for a trial: when the runner's cached
// scheduler was built under the same name and supports seed reset, it is
// rewound to seed — equivalent to a fresh construction — and reused;
// otherwise mk(seed) builds and caches a new one. The name must uniquely
// determine mk's behavior (the pool uses its stable scheduler names).
func (r *Runner) Scheduler(name string, seed uint64, mk func(uint64) model.Scheduler) model.Scheduler {
	if r.sched != nil && name != "" && r.schedName == name {
		if rs, ok := r.sched.(resettableScheduler); ok {
			rs.Reset(seed)
			return r.sched
		}
	}
	r.sched = mk(seed)
	r.schedName = name
	return r.sched
}

// Run executes one trial from the runner's initial-configuration buffer
// (see InitialConfig) and fills res in place, reusing res's report slices
// and final-configuration buffer across calls. res never aliases
// runner-owned memory, so materialized results stay valid after the
// runner's next trial. The initial-configuration buffer is consumed: the
// run mutates it, and the next trial must refill it.
func (r *Runner) Run(sys *model.System, opts RunOptions, res *RunResult) error {
	if opts.Scheduler == nil {
		return fmt.Errorf("core: RunOptions.Scheduler is required")
	}
	if opts.MaxSteps <= 0 {
		return fmt.Errorf("core: RunOptions.MaxSteps must be positive")
	}
	if r.sys != sys || r.cfg == nil {
		return fmt.Errorf("core: Runner.Run without an initial configuration for this system (call InitialConfig first)")
	}
	if r.rec == nil {
		r.rec = trace.NewRecorder(sys.N())
	} else {
		r.rec.Reset(sys.N())
	}
	if err := r.sim.Reset(sys, r.cfg, opts.Scheduler, opts.Seed, r.rec); err != nil {
		return err
	}
	checkEvery := opts.CheckEvery
	if checkEvery < 1 {
		checkEvery = 1
	}
	silent, err := r.sim.RunUntilSilent(opts.MaxSteps, checkEvery)
	if err != nil {
		return err
	}
	if silent {
		opts.Events.Emit(obs.Event{Kind: obs.KindSilence, Step: r.sim.Steps(), Round: r.sim.Rounds()})
	}
	res.Silent = silent
	res.StepsToSilence = r.sim.Steps()
	res.RoundsToSilence = r.sim.Rounds()
	res.LegitimateAtSilence = false
	if silent && opts.Legitimate != nil {
		res.LegitimateAtSilence = opts.Legitimate(sys, r.sim.Config())
	}
	if silent && opts.SuffixRounds > 0 {
		r.rec.MarkSuffix()
		r.sim.RunRounds(opts.SuffixRounds)
	}
	r.rec.ReportInto(&res.Report)
	if res.Final == nil {
		res.Final = model.NewZeroConfig(sys)
	}
	res.Final.CopyFrom(r.sim.Config())
	return nil
}

// RunRandom executes one adversarial trial: the initial configuration is
// drawn uniformly at random from opts.Seed — exactly the configuration
// model.NewRandomConfig(sys, rng.New(opts.Seed)) would build — directly
// into the runner-owned buffer, skipping the one-shot path's defensive
// clone.
func (r *Runner) RunRandom(sys *model.System, opts RunOptions, res *RunResult) error {
	cfg := r.InitialConfig(sys)
	r.initSrc.Reseed(opts.Seed)
	model.RandomizeConfig(sys, cfg, r.initRand)
	return r.Run(sys, opts, res)
}
