// Spanningtree: the paper's open question, live.
//
// The concluding remarks of the paper ask whether a *general
// transformer* can make any local-checking protocol communication-
// efficient in the stabilized phase. This example takes the classical
// full-read self-stabilizing BFS spanning-tree protocol (the archetype
// of "self-stabilization by local checking"), mechanically transforms it
// with the cached-view transformer of internal/transformer, and compares
// the two side by side:
//
//   - the full-read original reads Δ neighbors per activation, forever;
//   - the transformed protocol reads exactly one neighbor per step, by
//     construction — and, measured here, still self-stabilizes to the
//     same BFS tree.
package main

import (
	"fmt"
	"log"

	selfstab "repro"
	"repro/internal/model"
	"repro/internal/protocols/bfstree"
)

func main() {
	log.SetFlags(0)

	net, err := selfstab.Generate("gnp", 24, 31)
	if err != nil {
		log.Fatal(err)
	}
	const root = 0
	fmt.Printf("network: %s, root %d\n\n", net.Graph, root)

	full, err := selfstab.NewBFSTree(net, root)
	if err != nil {
		log.Fatal(err)
	}
	xform, err := selfstab.NewTransformed(full)
	if err != nil {
		log.Fatal(err)
	}

	for _, v := range []struct {
		name string
		sys  *model.System
	}{
		{"full-read BFS (local checking)", full},
		{"transformed BFS (cached view) ", xform},
	} {
		res, err := selfstab.Run(v.sys, selfstab.Options{Seed: 5, SuffixRounds: 2 * net.Graph.N()})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s\n", v.name)
		fmt.Printf("  stabilized: %v (correct BFS tree: %v) in %d rounds\n",
			res.Silent, res.LegitimateAtSilence, res.RoundsToSilence)
		fmt.Printf("  k-efficiency: %d neighbor(s)/step; comm complexity: %d bits/step\n",
			res.Report.KEfficiency, res.Report.CommComplexityBits)
		fmt.Printf("  steady-state reads per activation: %.2f\n\n",
			res.Report.SuffixAvgReadsPerSelection())
		if res.Silent {
			fmt.Printf("  tree depth: %d (true eccentricity of the root: %d)\n\n",
				bfstree.Depth(res.Final), trueEcc(net, root))
		}
	}
}

func trueEcc(net *selfstab.Network, root int) int {
	ecc := 0
	for _, d := range net.Graph.BFS(root) {
		if d > ecc {
			ecc = d
		}
	}
	return ecc
}
