// Pairing: peer backup pairing on an overlay network.
//
// Nodes of a peer-to-peer overlay pair up with a direct neighbor to
// mirror each other's data. A maximal matching guarantees no node is
// left unpaired while a willing neighbor is also unpaired. Protocol
// MATCHING maintains the pairing self-stabilizingly while each paired
// node only ever re-checks its own partner (1-stability), and the
// Theorem 8 bound 2⌈m/(2Δ-1)⌉ lower-bounds the number of paired nodes.
//
// The example also runs the goroutine-per-process runtime: every overlay
// node is a real goroutine over shared registers.
package main

import (
	"fmt"
	"log"

	selfstab "repro"
	"repro/internal/protocols/matching"
)

func main() {
	log.SetFlags(0)

	net, err := selfstab.Generate("regular", 20, 77)
	if err != nil {
		log.Fatal(err)
	}
	g := net.Graph
	fmt.Printf("overlay: %s\n", g)
	bound := matching.StabilityBound(g.M(), g.MaxDegree())
	fmt.Printf("Theorem 8 guarantee: at least %d of %d nodes end up paired\n\n", bound, g.N())

	sys, err := selfstab.NewMatching(net)
	if err != nil {
		log.Fatal(err)
	}

	// Lock-step simulator with stabilized-phase observation.
	res, err := selfstab.Run(sys, selfstab.Options{Seed: 3, SuffixRounds: 3 * g.N()})
	if err != nil {
		log.Fatal(err)
	}
	pairs := selfstab.MatchedEdges(sys, res.Final)
	fmt.Printf("lock-step run: %d pairs after %d rounds (valid maximal matching: %v)\n",
		len(pairs), res.RoundsToSilence, res.LegitimateAtSilence)
	fmt.Printf("paired nodes: %d (bound %d); 1-stable nodes in steady state: %d\n",
		2*len(pairs), bound, res.Report.StableProcesses(1))
	fmt.Printf("pairs: %v\n\n", pairs)

	// Concurrent run: one goroutine per overlay node, register-level
	// atomicity (weaker than the paper's model — see DESIGN.md §4).
	cres, err := selfstab.RunConcurrent(sys, selfstab.ConcurrentOptions{
		Seed: 4,
		Mode: "registers",
	})
	if err != nil {
		log.Fatal(err)
	}
	cpairs := selfstab.MatchedEdges(sys, cres.Final)
	fmt.Printf("concurrent run (registers mode): silent=%v valid=%v in %v, %d process steps\n",
		cres.Silent, cres.Legitimate, cres.Elapsed.Round(1000), cres.TotalSteps)
	fmt.Printf("pairs found concurrently: %d (paired nodes %d >= bound %d: %v)\n",
		len(cpairs), 2*len(cpairs), bound, 2*len(cpairs) >= bound)
}
