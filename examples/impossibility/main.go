// Impossibility: Theorems 1 and 2, executed.
//
// The paper proves that no ♦-k-stable protocol (every process eventually
// confines its reads to k < Δ neighbors) can self-stabilize to a
// neighbor-complete predicate: two silent executions can be cut and
// stitched into a configuration that is silent — nobody ever reads
// across the seam — yet globally illegitimate.
//
// This example builds those configurations against the frozen
// (♦-1-stable) protocol variants, checks the deadlock, and shows the
// real 1-efficient protocols escaping from the very same configuration
// because their perpetual scan eventually looks across the seam.
package main

import (
	"fmt"
	"log"

	"repro/internal/verify"
)

func main() {
	log.SetFlags(0)

	fmt.Println("=== Theorem 1/2 constructions (handcrafted, Figures 1-6) ===")
	demos, err := verify.AllHandcrafted()
	if err != nil {
		log.Fatal(err)
	}
	for _, d := range demos {
		report(d)
	}

	fmt.Println("=== Theorem 1: the proof's cut-and-stitch procedure, live ===")
	demo, tr, err := verify.StitchSearchColoring(2009)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("harvested silent γA (seed %d) and γB (seed %d); stitch case: %s\n",
		tr.SeedA, tr.SeedB, tr.Case)
	report(demo)

	fmt.Println("=== Theorem 2: stitch on the rooted dag-oriented network (Fig. 3) ===")
	demo2, tr2, err := verify.StitchSearchTheorem2Coloring(2010)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("harvested γ2 (seed %d) and γ5 (seed %d)\n", tr2.SeedA, tr2.SeedB)
	report(demo2)
}

func report(d *verify.Demo) {
	out, err := d.Check(1, 500000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-32s seam {%d,%d}:\n", d.Name, d.SeamP, d.SeamQ)
	fmt.Printf("  frozen variant:  silent=%v illegitimate=%v -> impossibility witnessed: %v\n",
		out.FrozenSilent, out.Illegitimate, out.FrozenImpossible)
	fmt.Printf("  real protocol:   silent=%v recovers=%v (in %d steps)\n\n",
		out.RealSilent, out.RealRecovers, out.RecoverySteps)
}
