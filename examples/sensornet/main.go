// Sensornet: clusterhead election in a wireless sensor network.
//
// A random geometric graph models radio reachability; Protocol MIS
// elects clusterheads (a maximal independent set: every sensor either is
// a clusterhead or hears one, and no two clusterheads interfere). The
// example shows the two properties the paper is about:
//
//  1. self-stabilization — after we corrupt the state of random sensors
//     (battery swap, bit flips), the network re-elects a valid
//     clusterhead set without any coordinator;
//  2. communication efficiency — once stable, each dominated sensor
//     keeps listening to a single neighbor only (1-stability), so the
//     radio duty cycle of most of the network drops to one neighbor
//     probe per cycle instead of Δ.
package main

import (
	"fmt"
	"log"

	selfstab "repro"
	"repro/internal/model"
	"repro/internal/rng"
)

func main() {
	log.SetFlags(0)

	const sensors = 40
	net, err := selfstab.Generate("rgg", sensors, 2024)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sensor field: %s (radio degree Δ=%d)\n\n", net.Graph, net.Graph.MaxDegree())

	sys, err := selfstab.NewMIS(net)
	if err != nil {
		log.Fatal(err)
	}

	// Phase 1: cold start from arbitrary per-sensor state.
	res, err := selfstab.Run(sys, selfstab.Options{Seed: 5, SuffixRounds: 4 * sensors})
	if err != nil {
		log.Fatal(err)
	}
	heads := clusterheads(res.Final)
	fmt.Printf("cold start: %d clusterheads elected after %d rounds (valid: %v)\n",
		len(heads), res.RoundsToSilence, res.LegitimateAtSilence)
	fmt.Printf("stabilized duty cycle: %d/%d sensors listen to exactly one neighbor\n",
		res.Report.StableProcesses(1), sensors)
	fmt.Printf("mean radio reads per activation in steady state: %.2f (full-read would be up to %d)\n\n",
		res.Report.SuffixAvgReadsPerSelection(), net.Graph.MaxDegree())

	// Phase 2: transient fault — corrupt k random sensors and re-run
	// from the corrupted configuration.
	corrupted := res.Final.Clone()
	r := rng.New(99)
	const faults = 8
	for i := 0; i < faults; i++ {
		p := r.Intn(sensors)
		corrupted.Comm[p][0] = r.Intn(2)                       // random role
		corrupted.Internal[p][0] = r.Intn(net.Graph.Degree(p)) // random pointer
	}
	res2, err := selfstab.Run(sys, selfstab.Options{Seed: 6, Initial: corrupted})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after corrupting %d sensors: re-stabilized in %d rounds (valid: %v)\n",
		faults, res2.RoundsToSilence, res2.LegitimateAtSilence)
	fmt.Printf("clusterheads after recovery: %d\n", len(clusterheads(res2.Final)))
}

func clusterheads(cfg *model.Config) []int {
	var heads []int
	for p, in := range selfstab.InMIS(cfg) {
		if in {
			heads = append(heads, p)
		}
	}
	return heads
}
