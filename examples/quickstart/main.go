// Quickstart: build a network, run the paper's three 1-efficient
// protocols on it from adversarial initial configurations, and print the
// communication-efficiency measures of Section 3.
package main

import (
	"fmt"
	"log"

	selfstab "repro"
	"repro/internal/model"
)

func main() {
	log.SetFlags(0)

	// A 4x4 grid network; local identifiers (colors) are computed
	// greedily for the protocols that need them.
	net, err := selfstab.Generate("grid", 16, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("network: %s\n\n", net.Graph)

	protocols := []struct {
		name  string
		build func(*selfstab.Network) (*model.System, error)
	}{
		{"COLORING (Fig. 7)", selfstab.NewColoring},
		{"MIS      (Fig. 8)", selfstab.NewMIS},
		{"MATCHING (Fig. 10)", selfstab.NewMatching},
	}
	for _, p := range protocols {
		sys, err := p.build(net)
		if err != nil {
			log.Fatal(err)
		}
		// Run from a uniformly random (adversarial) configuration under
		// the distributed fair scheduler, then watch the stabilized
		// phase for 48 extra rounds.
		res, err := selfstab.Run(sys, selfstab.Options{Seed: 7, SuffixRounds: 48})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s\n", p.name)
		fmt.Printf("  stabilized: %v (legitimate: %v) after %d rounds\n",
			res.Silent, res.LegitimateAtSilence, res.RoundsToSilence)
		fmt.Printf("  k-efficiency: %d neighbor/step   comm complexity: %d bits/step\n",
			res.Report.KEfficiency, res.Report.CommComplexityBits)
		fmt.Printf("  eventually-1-stable processes: %d of %d\n\n",
			res.Report.StableProcesses(1), res.Report.N)
	}

	// Decode the outputs of one protocol run.
	sys, err := selfstab.NewMatching(net)
	if err != nil {
		log.Fatal(err)
	}
	res, err := selfstab.Run(sys, selfstab.Options{Seed: 9})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("maximal matching found: %v\n", selfstab.MatchedEdges(sys, res.Final))
}
