// Channelassign: radio channel assignment on an interference graph.
//
// Access points that interfere must broadcast on different channels —
// vertex coloring with a Δ+1 channel budget. Protocol COLORING solves it
// anonymously (no identifiers needed) while probing a single interfering
// neighbor per activation, and repairs the assignment after channel
// database corruption.
package main

import (
	"fmt"
	"log"

	selfstab "repro"
	"repro/internal/model"
	"repro/internal/rng"
)

func main() {
	log.SetFlags(0)

	// Dense deployment: a torus of access points (every AP interferes
	// with four others), plus a sparser random deployment.
	for _, topo := range []struct {
		name string
		n    int
	}{
		{"torus", 16},
		{"rgg", 30},
	} {
		net, err := selfstab.Generate(topo.name, topo.n, 42)
		if err != nil {
			log.Fatal(err)
		}
		sys, err := selfstab.NewColoring(net)
		if err != nil {
			log.Fatal(err)
		}
		budget := net.Graph.MaxDegree() + 1

		res, err := selfstab.Run(sys, selfstab.Options{Seed: 11})
		if err != nil {
			log.Fatal(err)
		}
		channels := selfstab.Colors(res.Final)
		fmt.Printf("%s: %d APs, channel budget %d\n", net.Graph, net.Graph.N(), budget)
		fmt.Printf("  assignment valid: %v (after %d rounds, %d channel switches)\n",
			res.LegitimateAtSilence, res.RoundsToSilence, res.Report.CommWrites)
		fmt.Printf("  channels in use: %d of %d\n", distinct(channels), budget)

		// Corrupt the channel table of a third of the APs.
		corrupted := res.Final.Clone()
		r := rng.New(7)
		faults := net.Graph.N() / 3
		for i := 0; i < faults; i++ {
			p := r.Intn(net.Graph.N())
			corrupted.Comm[p][0] = r.Intn(budget)
		}
		res2, err := selfstab.Run(sys, selfstab.Options{Seed: 12, Initial: corrupted})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  after corrupting %d channel tables: repaired in %d rounds, %d switches\n\n",
			faults, res2.RoundsToSilence, res2.Report.CommWrites)
		validate(net, res2.Final)
	}
}

func distinct(xs []int) int {
	set := map[int]bool{}
	for _, x := range xs {
		set[x] = true
	}
	return len(set)
}

func validate(net *selfstab.Network, cfg *model.Config) {
	channels := selfstab.Colors(cfg)
	for _, e := range net.Graph.Edges() {
		if channels[e[0]] == channels[e[1]] {
			log.Fatalf("interfering APs %d and %d share channel %d", e[0], e[1], channels[e[0]])
		}
	}
}
