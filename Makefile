# Local workflows and CI invoke identical commands through these targets.

GO ?= go

# pipefail so piped targets (bench-json) fail when go test fails.
SHELL := /bin/bash
.SHELLFLAGS := -o pipefail -c

.PHONY: build test test-race bench bench-json fmt vet check

build:
	$(GO) build ./...

test:
	$(GO) test -short -timeout 10m ./...

test-race:
	$(GO) test -race -short -timeout 10m ./...

# Full (non-short) suite: what the tier-1 verify runs.
test-full:
	$(GO) test -timeout 20m ./...

bench:
	$(GO) test -bench=. -benchtime=1x -run='^$$' . ./internal/model

# Machine-readable perf trajectory: run the step-engine core benchmarks
# and record (name, ns/op, allocs/op) in BENCH_2.json. The committed
# copy is the canonical baseline for this PR's engine (numbers are
# machine-specific — regenerate locally only to compare shapes, not to
# commit); CI uploads a fresh run as an artifact on every push. Bump the
# N in the filename when a later PR resets the baseline.
BENCH_CORE = 'BenchmarkExecuteStep|BenchmarkEnabledTracker|BenchmarkConfigClone|BenchmarkSimulatorStep'
bench-json:
	$(GO) test -bench=$(BENCH_CORE) -benchmem -run='^$$' ./internal/model . \
		| $(GO) run ./cmd/benchjson > BENCH_2.json
	@echo wrote BENCH_2.json

fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then echo "gofmt needed:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

check: build vet fmt test
