# Local workflows and CI invoke identical commands through these targets.

GO ?= go

.PHONY: build test test-race bench fmt vet check

build:
	$(GO) build ./...

test:
	$(GO) test -short -timeout 10m ./...

test-race:
	$(GO) test -race -short -timeout 10m ./...

# Full (non-short) suite: what the tier-1 verify runs.
test-full:
	$(GO) test -timeout 20m ./...

bench:
	$(GO) test -bench=. -benchtime=1x -run='^$$' .

fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then echo "gofmt needed:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

check: build vet fmt test
