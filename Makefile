# Local workflows and CI invoke identical commands through these targets.
# `make help` lists them; the `## ...` suffix on a target line is its
# help text.

GO ?= go

# pipefail so piped targets (bench-json) fail when go test fails.
SHELL := /bin/bash
.SHELLFLAGS := -o pipefail -c

.PHONY: build test test-race test-full bench bench-json bench-diff bench-diff-committed \
	scale-smoke fuzz-smoke campaign-smoke events-smoke batch-smoke service-smoke \
	lint fmt vet check help

help: ## List targets with their one-line descriptions
	@awk -F':.*## ' '/^[a-zA-Z_-]+:.*## / {printf "  %-22s %s\n", $$1, $$2}' $(MAKEFILE_LIST)

build: ## Compile every package
	$(GO) build ./...

test: ## Short test suite (what CI runs per push)
	$(GO) test -short -timeout 10m ./...

test-race: ## Short suite under the race detector
	$(GO) test -race -short -timeout 10m ./...

test-full: ## Full (non-short) suite: what the tier-1 verify runs
	$(GO) test -timeout 20m ./...

bench: ## Run every benchmark once (compile + smoke)
	$(GO) test -bench=. -benchtime=1x -run='^$$' . ./internal/model ./internal/core ./internal/trace ./internal/fault ./internal/graph

# Static analysis beyond go vet, plus the vulnerability scanner over the
# dependency graph (trivial here: the module is stdlib-only, so the scan
# gates the toolchain/stdlib version itself). Both tools are version-
# pinned and fetched per run via `go run pkg@version` — no tool
# dependencies enter go.mod, and CI and local runs agree on versions by
# construction. Requires network on first run (the module cache persists
# afterwards); pure-local workflows use `make vet fmt` instead.
STATICCHECK_VERSION ?= 2025.1.1
GOVULNCHECK_VERSION ?= v1.1.4
lint: ## staticcheck + govulncheck (pinned versions, fetched on demand)
	$(GO) run honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION) ./...
	$(GO) run golang.org/x/vuln/cmd/govulncheck@$(GOVULNCHECK_VERSION) ./...

# Native fuzz smoke: each target fuzzes for a short budget (a regression
# in the encoding round-trip or the subset sampler surfaces within
# seconds; the committed corpora under testdata/fuzz/ run as plain tests
# on every `go test`). `go test -fuzz` takes one target per invocation,
# hence the two runs.
FUZZTIME ?= 20s
fuzz-smoke: ## Short native fuzz pass over the fuzz targets
	$(GO) test ./internal/graph -fuzz FuzzGraphEncodingRoundTrip -fuzztime $(FUZZTIME) -run '^$$'
	$(GO) test ./internal/rng -fuzz FuzzAppendSubsetNonEmpty -fuzztime $(FUZZTIME) -run '^$$'
	$(GO) test ./internal/campaign -fuzz FuzzParseCampaign -fuzztime $(FUZZTIME) -run '^$$'
	$(GO) test ./internal/fault -fuzz FuzzParseChurn -fuzztime $(FUZZTIME) -run '^$$'

# Campaign smoke: run the bundled quickstart campaign twice against one
# cache directory; the second run must be 100% cache hits and both runs
# must produce byte-identical JSONL and table output. This is the
# end-to-end proof of the campaign subsystem's resume contract, cheap
# enough for every push.
CAMPAIGN_SMOKE_DIR ?= /tmp/campaign-smoke
campaign-smoke: ## Quickstart campaign twice: resume contract end to end
	rm -rf $(CAMPAIGN_SMOKE_DIR) && mkdir -p $(CAMPAIGN_SMOKE_DIR)
	$(GO) run ./cmd/sscampaign -cache $(CAMPAIGN_SMOKE_DIR)/cache -jsonl $(CAMPAIGN_SMOKE_DIR)/run1.jsonl \
		examples/campaigns/quickstart.campaign > $(CAMPAIGN_SMOKE_DIR)/table1.txt 2> $(CAMPAIGN_SMOKE_DIR)/status1.txt
	$(GO) run ./cmd/sscampaign -cache $(CAMPAIGN_SMOKE_DIR)/cache -jsonl $(CAMPAIGN_SMOKE_DIR)/run2.jsonl \
		examples/campaigns/quickstart.campaign > $(CAMPAIGN_SMOKE_DIR)/table2.txt 2> $(CAMPAIGN_SMOKE_DIR)/status2.txt
	cmp $(CAMPAIGN_SMOKE_DIR)/run1.jsonl $(CAMPAIGN_SMOKE_DIR)/run2.jsonl
	cmp $(CAMPAIGN_SMOKE_DIR)/table1.txt $(CAMPAIGN_SMOKE_DIR)/table2.txt
	grep -q ', cache 0 hits' $(CAMPAIGN_SMOKE_DIR)/status1.txt
	grep -Eq ', cache [1-9][0-9]* hits, 0 misses' $(CAMPAIGN_SMOKE_DIR)/status2.txt
	$(GO) run ./cmd/sscampaign -cache $(CAMPAIGN_SMOKE_DIR)/cache -jsonl $(CAMPAIGN_SMOKE_DIR)/churn1.jsonl \
		examples/campaigns/churn.campaign > $(CAMPAIGN_SMOKE_DIR)/churn-table1.txt 2> $(CAMPAIGN_SMOKE_DIR)/churn-status1.txt
	$(GO) run ./cmd/sscampaign -cache $(CAMPAIGN_SMOKE_DIR)/cache -jsonl $(CAMPAIGN_SMOKE_DIR)/churn2.jsonl \
		examples/campaigns/churn.campaign > $(CAMPAIGN_SMOKE_DIR)/churn-table2.txt 2> $(CAMPAIGN_SMOKE_DIR)/churn-status2.txt
	cmp $(CAMPAIGN_SMOKE_DIR)/churn1.jsonl $(CAMPAIGN_SMOKE_DIR)/churn2.jsonl
	cmp $(CAMPAIGN_SMOKE_DIR)/churn-table1.txt $(CAMPAIGN_SMOKE_DIR)/churn-table2.txt
	grep -Eq ', cache [1-9][0-9]* hits, 0 misses' $(CAMPAIGN_SMOKE_DIR)/churn-status2.txt
	@echo "campaign smoke OK: byte-identical output, second runs fully cached (churn included)"

# Events smoke: the end-to-end proof of the canonical event log's
# determinism contract (internal/obs). The quickstart campaign runs
# three times — cold at parallelism 1 (populating a cache), uncached at
# parallelism 4, and fully warm at parallelism 4 — and all three -events
# logs must be byte-identical: scheduling must not reorder the log, and
# cache hits must replay the exact events a compute pass emits. The
# committed golden event log (internal/experiment/testdata) re-verifies
# as part of the same target.
EVENTS_SMOKE_DIR ?= /tmp/events-smoke
events-smoke: ## Event-log byte-identity across parallelism and cache state
	rm -rf $(EVENTS_SMOKE_DIR) && mkdir -p $(EVENTS_SMOKE_DIR)
	$(GO) run ./cmd/sscampaign -parallelism 1 -cache $(EVENTS_SMOKE_DIR)/cache -events $(EVENTS_SMOKE_DIR)/cold.events \
		examples/campaigns/quickstart.campaign > /dev/null 2> $(EVENTS_SMOKE_DIR)/status1.txt
	$(GO) run ./cmd/sscampaign -parallelism 4 -events $(EVENTS_SMOKE_DIR)/p4.events \
		examples/campaigns/quickstart.campaign > /dev/null 2> $(EVENTS_SMOKE_DIR)/status2.txt
	$(GO) run ./cmd/sscampaign -parallelism 4 -cache $(EVENTS_SMOKE_DIR)/cache -events $(EVENTS_SMOKE_DIR)/warm.events \
		examples/campaigns/quickstart.campaign > /dev/null 2> $(EVENTS_SMOKE_DIR)/status3.txt
	cmp $(EVENTS_SMOKE_DIR)/cold.events $(EVENTS_SMOKE_DIR)/p4.events
	cmp $(EVENTS_SMOKE_DIR)/cold.events $(EVENTS_SMOKE_DIR)/warm.events
	grep -Eq ', cache [1-9][0-9]* hits, 0 misses' $(EVENTS_SMOKE_DIR)/status3.txt
	$(GO) run ./cmd/sscampaign -parallelism 1 -cache $(EVENTS_SMOKE_DIR)/churn-cache -events $(EVENTS_SMOKE_DIR)/churn-cold.events \
		examples/campaigns/churn.campaign > /dev/null 2> $(EVENTS_SMOKE_DIR)/churn-status1.txt
	$(GO) run ./cmd/sscampaign -parallelism 4 -cache $(EVENTS_SMOKE_DIR)/churn-cache -events $(EVENTS_SMOKE_DIR)/churn-warm.events \
		examples/campaigns/churn.campaign > /dev/null 2> $(EVENTS_SMOKE_DIR)/churn-status2.txt
	cmp $(EVENTS_SMOKE_DIR)/churn-cold.events $(EVENTS_SMOKE_DIR)/churn-warm.events
	grep -Eq ', cache [1-9][0-9]* hits, 0 misses' $(EVENTS_SMOKE_DIR)/churn-status2.txt
	$(GO) test ./internal/experiment -run TestGoldenEvents
	@echo "events smoke OK: logs byte-identical across parallelism 1/4 and cold/warm cache (churn included)"

# Machine-readable perf trajectory: run the engine core benchmarks (step
# engine, enabled tracker, trial pipeline, batched trial pipeline,
# recorder, and the dynamic-topology hot path: graph mutation, topology
# step, churn trial loop) and record (name, ns/op, B/op, allocs/op) in
# BENCH_6.json. The committed copy is the canonical baseline for this
# PR's engine (numbers are machine-specific — regenerate locally only to
# compare shapes, not to commit); CI uploads a fresh run as an artifact
# on every push. Bump the N in the filename when a later PR resets the
# baseline.
BENCH_CORE = 'BenchmarkExecuteStep|BenchmarkEnabledTracker|BenchmarkConfigClone|BenchmarkSimulatorStep|BenchmarkTrialLoop|BenchmarkBatchedTrials|BenchmarkRecorderReadFullStep|BenchmarkGraphMutation|BenchmarkTopologyStep|BenchmarkChurnTrialLoop'
BENCH_PKGS = ./internal/model ./internal/core ./internal/trace ./internal/graph .
# Longer benchtime than the 1s default: committed baselines are compared
# against each other by the gate, so per-run noise translates directly
# into false regressions on noisy (single-core, shared) machines.
BENCHTIME ?= 2s
bench-json: ## Record the core-benchmark baseline as BENCH_6.json
	$(GO) test -bench=$(BENCH_CORE) -benchtime=$(BENCHTIME) -benchmem -run='^$$' $(BENCH_PKGS) \
		| $(GO) run ./cmd/benchjson > BENCH_6.json
	@echo wrote BENCH_6.json

# Regression gates (benchjson -diff): fail on >25% ns/op regressions,
# >10% bytes_per_op regressions, or any allocs/op growth in the
# model/trace/graph microbenchmarks (the trial-loop, churn-trial-loop
# and experiment benches run whole executions and are too noisy to gate
# on ns/op).
BENCH_GATE = 'BenchmarkExecuteStep|BenchmarkEnabledTracker|BenchmarkConfigClone|BenchmarkRecorderReadFullStep|BenchmarkGraphMutation|BenchmarkTopologyStep'

bench-diff: ## Fresh local benchmark run vs the committed baseline
	$(GO) test -bench=$(BENCH_CORE) -benchtime=$(BENCHTIME) -benchmem -run='^$$' $(BENCH_PKGS) \
		| $(GO) run ./cmd/benchjson > /tmp/bench-head.json
	$(GO) run ./cmd/benchjson -diff -max-regress 25 -max-bytes-regress 10 -filter $(BENCH_GATE) BENCH_6.json /tmp/bench-head.json

# bench-diff-committed: committed previous baseline vs committed current
# baseline — both measured on the same machine class, so the gate is
# deterministic. CI runs this on every push. Benchmarks new in BENCH_6
# have no BENCH_5 counterpart and are reported without gating.
bench-diff-committed: ## Committed previous vs current baseline (deterministic)
	$(GO) run ./cmd/benchjson -diff -max-regress 25 -max-bytes-regress 10 -filter $(BENCH_GATE) BENCH_5.json BENCH_6.json

# Large-n scale smoke: drive the E22 headline cell — a 10⁶-process torus
# under synchronous COLORING — to a legitimate silent configuration and
# gate its peak RSS. The budget documents the engine's large-graph
# memory claim: the cell measures ~740 MiB peak on the reference runner
# (~730 B/process live heap), and 1024 MiB leaves headroom for allocator
# and GC variance without masking an O(n²) reintroduction, which would
# blow past it by orders of magnitude.
SCALE_BUDGET_MB ?= 1024
scale-smoke: ## 10⁶-node torus cell to silence under the peak-RSS budget
	$(GO) run ./cmd/ssscale -n 1000000 -graph torus -budget-mb $(SCALE_BUDGET_MB)

# Batch smoke: the end-to-end proof of the lockstep-batching invariance
# contract on real binaries — the full quickstart campaign's JSONL and
# canonical -events log, and an ssbench registry table, must be
# byte-identical between -batch 1 (off) and the auto width. The
# package-level equivalence suites run as part of the same target.
BATCH_SMOKE_DIR ?= /tmp/batch-smoke
batch-smoke: ## Batched vs unbatched byte-identity end to end
	rm -rf $(BATCH_SMOKE_DIR) && mkdir -p $(BATCH_SMOKE_DIR)
	$(GO) run ./cmd/sscampaign -batch 1 -jsonl $(BATCH_SMOKE_DIR)/off.jsonl -events $(BATCH_SMOKE_DIR)/off.events \
		examples/campaigns/quickstart.campaign > /dev/null 2> $(BATCH_SMOKE_DIR)/status1.txt
	$(GO) run ./cmd/sscampaign -jsonl $(BATCH_SMOKE_DIR)/auto.jsonl -events $(BATCH_SMOKE_DIR)/auto.events \
		examples/campaigns/quickstart.campaign > /dev/null 2> $(BATCH_SMOKE_DIR)/status2.txt
	cmp $(BATCH_SMOKE_DIR)/off.jsonl $(BATCH_SMOKE_DIR)/auto.jsonl
	cmp $(BATCH_SMOKE_DIR)/off.events $(BATCH_SMOKE_DIR)/auto.events
	$(GO) run ./cmd/ssbench -run E1,E2,E3 -quick -trials 4 -batch 1 > $(BATCH_SMOKE_DIR)/tab-off.txt
	$(GO) run ./cmd/ssbench -run E1,E2,E3 -quick -trials 4 > $(BATCH_SMOKE_DIR)/tab-auto.txt
	cmp $(BATCH_SMOKE_DIR)/tab-off.txt $(BATCH_SMOKE_DIR)/tab-auto.txt
	$(GO) test ./internal/experiment -run 'TestReduceBatchWidths|TestPooledMatchesUnpooled' -count=1
	$(GO) test ./internal/campaign -run 'TestDeterminismAcrossBatchWidths' -count=1
	$(GO) test ./internal/core -run 'TestBatchRunner|TestBatchedTrialLoopZeroAlloc' -count=1
	@echo "batch smoke OK: JSONL, events and tables byte-identical between -batch 1 and auto"

# Service smoke: the campaign daemon end to end over real TCP — start
# sscampaignd with a directory cache, POST the quickstart campaign in
# streaming form, download the served JSONL and canonical event log and
# byte-compare both against a CLI sscampaign run, then re-POST (100%
# cache hits, identical bytes) and SIGTERM-drain. The scripted flow
# lives in scripts/service_smoke.sh; internal/service's tests prove the
# same contract in-process with adversarial steal schedules.
SERVICE_SMOKE_DIR ?= /tmp/service-smoke
service-smoke: ## Campaign daemon end to end: serve = CLI bytes, warm re-POST, clean drain
	bash scripts/service_smoke.sh $(SERVICE_SMOKE_DIR)

fmt: ## Fail if any file needs gofmt
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then echo "gofmt needed:"; echo "$$out"; exit 1; fi

vet: ## go vet every package
	$(GO) vet ./...

check: build vet fmt test ## build + vet + fmt + test
