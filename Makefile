# Local workflows and CI invoke identical commands through these targets.

GO ?= go

# pipefail so piped targets (bench-json) fail when go test fails.
SHELL := /bin/bash
.SHELLFLAGS := -o pipefail -c

.PHONY: build test test-race bench bench-json bench-diff bench-diff-committed fuzz-smoke campaign-smoke fmt vet check

build:
	$(GO) build ./...

test:
	$(GO) test -short -timeout 10m ./...

test-race:
	$(GO) test -race -short -timeout 10m ./...

# Full (non-short) suite: what the tier-1 verify runs.
test-full:
	$(GO) test -timeout 20m ./...

bench:
	$(GO) test -bench=. -benchtime=1x -run='^$$' . ./internal/model ./internal/core ./internal/trace ./internal/fault

# Native fuzz smoke: each target fuzzes for a short budget (a regression
# in the encoding round-trip or the subset sampler surfaces within
# seconds; the committed corpora under testdata/fuzz/ run as plain tests
# on every `go test`). `go test -fuzz` takes one target per invocation,
# hence the two runs.
FUZZTIME ?= 20s
fuzz-smoke:
	$(GO) test ./internal/graph -fuzz FuzzGraphEncodingRoundTrip -fuzztime $(FUZZTIME) -run '^$$'
	$(GO) test ./internal/rng -fuzz FuzzAppendSubsetNonEmpty -fuzztime $(FUZZTIME) -run '^$$'
	$(GO) test ./internal/campaign -fuzz FuzzParseCampaign -fuzztime $(FUZZTIME) -run '^$$'

# Campaign smoke: run the bundled quickstart campaign twice against one
# cache directory; the second run must be 100% cache hits and both runs
# must produce byte-identical JSONL and table output. This is the
# end-to-end proof of the campaign subsystem's resume contract, cheap
# enough for every push.
CAMPAIGN_SMOKE_DIR ?= /tmp/campaign-smoke
campaign-smoke:
	rm -rf $(CAMPAIGN_SMOKE_DIR) && mkdir -p $(CAMPAIGN_SMOKE_DIR)
	$(GO) run ./cmd/sscampaign -cache $(CAMPAIGN_SMOKE_DIR)/cache -jsonl $(CAMPAIGN_SMOKE_DIR)/run1.jsonl \
		examples/campaigns/quickstart.campaign > $(CAMPAIGN_SMOKE_DIR)/table1.txt 2> $(CAMPAIGN_SMOKE_DIR)/status1.txt
	$(GO) run ./cmd/sscampaign -cache $(CAMPAIGN_SMOKE_DIR)/cache -jsonl $(CAMPAIGN_SMOKE_DIR)/run2.jsonl \
		examples/campaigns/quickstart.campaign > $(CAMPAIGN_SMOKE_DIR)/table2.txt 2> $(CAMPAIGN_SMOKE_DIR)/status2.txt
	cmp $(CAMPAIGN_SMOKE_DIR)/run1.jsonl $(CAMPAIGN_SMOKE_DIR)/run2.jsonl
	cmp $(CAMPAIGN_SMOKE_DIR)/table1.txt $(CAMPAIGN_SMOKE_DIR)/table2.txt
	grep -q ', cache 0 hits' $(CAMPAIGN_SMOKE_DIR)/status1.txt
	grep -Eq ', cache [1-9][0-9]* hits, 0 misses' $(CAMPAIGN_SMOKE_DIR)/status2.txt
	@echo "campaign smoke OK: byte-identical output, second run fully cached"

# Machine-readable perf trajectory: run the engine core benchmarks (step
# engine, enabled tracker, trial pipeline, recorder) and record
# (name, ns/op, allocs/op) in BENCH_3.json. The committed copy is the
# canonical baseline for this PR's engine (numbers are machine-specific —
# regenerate locally only to compare shapes, not to commit); CI uploads a
# fresh run as an artifact on every push. Bump the N in the filename when
# a later PR resets the baseline.
BENCH_CORE = 'BenchmarkExecuteStep|BenchmarkEnabledTracker|BenchmarkConfigClone|BenchmarkSimulatorStep|BenchmarkTrialLoop|BenchmarkRecorderReadFullStep'
BENCH_PKGS = ./internal/model ./internal/core ./internal/trace .
bench-json:
	$(GO) test -bench=$(BENCH_CORE) -benchmem -run='^$$' $(BENCH_PKGS) \
		| $(GO) run ./cmd/benchjson > BENCH_3.json
	@echo wrote BENCH_3.json

# Regression gates (benchjson -diff): fail on >25% ns/op regressions or
# any allocs/op growth in the model/trace microbenchmarks (the trial-loop
# and experiment benches run whole executions and are too noisy to gate).
BENCH_GATE = 'BenchmarkExecuteStep|BenchmarkEnabledTracker|BenchmarkConfigClone|BenchmarkRecorderReadFullStep'

# bench-diff: fresh local run vs the committed current baseline — the
# pre-commit regression check. Numbers are machine-specific, so expect
# noise when your machine differs from the baseline's.
bench-diff:
	$(GO) test -bench=$(BENCH_CORE) -benchmem -run='^$$' $(BENCH_PKGS) \
		| $(GO) run ./cmd/benchjson > /tmp/bench-head.json
	$(GO) run ./cmd/benchjson -diff -max-regress 25 -filter $(BENCH_GATE) BENCH_3.json /tmp/bench-head.json

# bench-diff-committed: committed previous baseline vs committed current
# baseline — both measured on the same machine, so the gate is
# deterministic. CI runs this on every push.
bench-diff-committed:
	$(GO) run ./cmd/benchjson -diff -max-regress 25 -filter $(BENCH_GATE) BENCH_2.json BENCH_3.json

fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then echo "gofmt needed:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

check: build vet fmt test
