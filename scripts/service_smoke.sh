#!/usr/bin/env bash
# Campaign service smoke: the end-to-end proof of the served-run
# determinism contract on real binaries over real TCP. Starts
# sscampaignd with a directory cache, POSTs the quickstart campaign,
# streams its progress to completion, downloads the per-trial JSONL and
# canonical event log, and byte-compares both against a CLI sscampaign
# run of the same file. A second POST of the same spec must be 100%
# cache hits with identical bytes, and SIGTERM must stop the daemon
# cleanly. Usage: scripts/service_smoke.sh [workdir]
set -euo pipefail

DIR=${1:-/tmp/service-smoke}
CAMPAIGN=examples/campaigns/quickstart.campaign
rm -rf "$DIR" && mkdir -p "$DIR"

go build -o "$DIR/sscampaignd" ./cmd/sscampaignd
go build -o "$DIR/sscampaign" ./cmd/sscampaign

# CLI reference artifacts at the same seed.
"$DIR/sscampaign" -jsonl "$DIR/cli.jsonl" -events "$DIR/cli.events" "$CAMPAIGN" >/dev/null 2>&1

# Daemon on a free port; the bound address is scraped from its stderr.
"$DIR/sscampaignd" -addr 127.0.0.1:0 -cache "$DIR/cache" -workers 4 2> "$DIR/daemon.log" &
DAEMON=$!
trap 'kill "$DAEMON" 2>/dev/null || true' EXIT
BASE=
for _ in $(seq 1 100); do
    BASE=$(sed -n 's/^sscampaignd: listening on \(http:\/\/.*\)$/\1/p' "$DIR/daemon.log")
    [ -n "$BASE" ] && break
    kill -0 "$DAEMON" 2>/dev/null || { echo "daemon died:"; cat "$DIR/daemon.log"; exit 1; }
    sleep 0.1
done
[ -n "$BASE" ] || { echo "daemon never reported its address"; cat "$DIR/daemon.log"; exit 1; }

# POST the campaign in streaming form: the ndjson response's first line
# is the run object, the rest is every progress event (the subscription
# attaches before the run starts, so the count below is deterministic),
# and the body ending doubles as the wait for completion.
curl -fsSN -X POST --data-binary @"$CAMPAIGN" "$BASE/v1/runs?stream=1" > "$DIR/stream.jsonl"
RUN=$(head -n 1 "$DIR/stream.jsonl" | jq -r .id)
tail -n +2 "$DIR/stream.jsonl" | jq -es 'map(select(.ev == "trial-finish")) | length' | grep -qx 36 \
    || { echo "stream did not carry 12 cells x 3 trials of progress"; exit 1; }

# Served artifacts must be byte-identical to the CLI run.
curl -fsS "$BASE/v1/runs/$RUN/jsonl" > "$DIR/served.jsonl"
curl -fsS "$BASE/v1/runs/$RUN/events" > "$DIR/served.events"
cmp "$DIR/cli.jsonl" "$DIR/served.jsonl"
cmp "$DIR/cli.events" "$DIR/served.events"
curl -fsS "$BASE/v1/runs/$RUN" | jq -e '.state == "done" and .cache_misses == 12' >/dev/null

# Warm re-POST: every cell hits the shared cache, bytes unchanged.
curl -fsSN -X POST --data-binary @"$CAMPAIGN" "$BASE/v1/runs?stream=1" > "$DIR/warm-stream.jsonl"
RUN2=$(head -n 1 "$DIR/warm-stream.jsonl" | jq -r .id)
curl -fsS "$BASE/v1/runs/$RUN2" | jq -e '.cache_hits == 12 and .cache_misses == 0' >/dev/null
curl -fsS "$BASE/v1/runs/$RUN2/jsonl" > "$DIR/warm.jsonl"
cmp "$DIR/cli.jsonl" "$DIR/warm.jsonl"
curl -fsS "$BASE/v1/cache" | jq -e '.entries == 12' >/dev/null

# Graceful shutdown: SIGTERM drains and exits 0.
kill -TERM "$DAEMON"
wait "$DAEMON"
trap - EXIT
grep -q 'sscampaignd: stopped' "$DIR/daemon.log"

echo "service smoke OK: served JSONL and events byte-identical to the CLI run, warm re-POST fully cached, clean SIGTERM drain"
