// Benchmarks regenerating every paper artifact (one benchmark per
// experiment E1-E12, see DESIGN.md for the artifact index), plus
// convergence micro-benchmarks per protocol and network size, engine
// micro-benchmarks, and before/after benchmarks for the parallel trial
// pool and the incremental silence detector.
//
// Run: go test -bench=. -benchmem
// -short shrinks trials and graph sizes for CI smoke runs.
package selfstab

import (
	"fmt"
	"runtime"
	"testing"

	"repro/internal/experiment"
	"repro/internal/graph"
	"repro/internal/model"
	"repro/internal/rng"
	"repro/internal/sched"
	"repro/internal/trace"
)

// benchSizes returns the convergence benchmark network sizes, shrunk
// under -short.
func benchSizes() []int {
	if testing.Short() {
		return []int{8, 16}
	}
	return []int{8, 16, 32}
}

// benchTrials returns the per-cell trial count for experiment
// benchmarks, shrunk under -short.
func benchTrials() int {
	if testing.Short() {
		return 1
	}
	return 2
}

// benchExperiment runs one experiment per iteration on the quick suite
// and fails the benchmark if the paper claim check fails.
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	run, err := experiment.ByID(id)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		res, err := run(experiment.Config{
			Seed:     uint64(i) + 1,
			Trials:   benchTrials(),
			MaxSteps: 500000,
			Quick:    true,
		})
		if err != nil {
			b.Fatal(err)
		}
		if !res.Pass {
			b.Fatalf("%s failed:\n%s", id, res.Table.String())
		}
	}
}

func BenchmarkE1ColoringConvergence(b *testing.B) { benchExperiment(b, "E1") }
func BenchmarkE2Bits(b *testing.B)                { benchExperiment(b, "E2") }
func BenchmarkE3MISRounds(b *testing.B)           { benchExperiment(b, "E3") }
func BenchmarkE4MISStability(b *testing.B)        { benchExperiment(b, "E4") }
func BenchmarkE5MatchingRounds(b *testing.B)      { benchExperiment(b, "E5") }
func BenchmarkE6MatchingStability(b *testing.B)   { benchExperiment(b, "E6") }
func BenchmarkE7Stitch(b *testing.B)              { benchExperiment(b, "E7") }
func BenchmarkE8StitchDag(b *testing.B)           { benchExperiment(b, "E8") }
func BenchmarkE9DagOrient(b *testing.B)           { benchExperiment(b, "E9") }
func BenchmarkE10StabilizedOverhead(b *testing.B) { benchExperiment(b, "E10") }
func BenchmarkE11Schedulers(b *testing.B)         { benchExperiment(b, "E11") }
func BenchmarkE12Concurrent(b *testing.B)         { benchExperiment(b, "E12") }
func BenchmarkE13Transformer(b *testing.B)        { benchExperiment(b, "E13") }
func BenchmarkE14Scaling(b *testing.B)            { benchExperiment(b, "E14") }
func BenchmarkE15Faults(b *testing.B)             { benchExperiment(b, "E15") }

// Convergence micro-benchmarks: one full stabilization per iteration.

func benchProtocol(b *testing.B, build func(*Network) (*model.System, error), topo string, n int) {
	b.Helper()
	net, err := Generate(topo, n, 7)
	if err != nil {
		b.Fatal(err)
	}
	sys, err := build(net)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := Run(sys, Options{Seed: uint64(i) + 1, MaxSteps: 2_000_000})
		if err != nil {
			b.Fatal(err)
		}
		if !res.Silent {
			b.Fatal("no silence")
		}
		b.ReportMetric(float64(res.StepsToSilence), "steps/conv")
		b.ReportMetric(float64(res.RoundsToSilence), "rounds/conv")
	}
}

func BenchmarkColoringConvergence(b *testing.B) {
	for _, n := range benchSizes() {
		b.Run(fmt.Sprintf("gnp-%d", n), func(b *testing.B) {
			benchProtocol(b, NewColoring, "gnp", n)
		})
	}
}

func BenchmarkMISConvergence(b *testing.B) {
	for _, n := range benchSizes() {
		b.Run(fmt.Sprintf("gnp-%d", n), func(b *testing.B) {
			benchProtocol(b, NewMIS, "gnp", n)
		})
	}
}

func BenchmarkMatchingConvergence(b *testing.B) {
	for _, n := range benchSizes() {
		b.Run(fmt.Sprintf("gnp-%d", n), func(b *testing.B) {
			benchProtocol(b, NewMatching, "gnp", n)
		})
	}
}

// Before/after benchmarks for the two engine changes of the parallel
// sharded pool PR.

// BenchmarkTrialPool measures the experiment registry's trial engine at
// Parallelism 1 (the old sequential behaviour) versus GOMAXPROCS. The
// output tables are byte-identical; only wall-clock differs.
func BenchmarkTrialPool(b *testing.B) {
	for _, par := range []int{1, runtime.GOMAXPROCS(0)} {
		b.Run(fmt.Sprintf("parallelism-%d", par), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := experiment.E1ColoringConvergence(experiment.Config{
					Seed:        1,
					Trials:      benchTrials() * 2,
					MaxSteps:    500000,
					Quick:       testing.Short(),
					Parallelism: par,
				})
				if err != nil {
					b.Fatal(err)
				}
				if !res.Pass {
					b.Fatal("E1 failed")
				}
			}
		})
	}
}

// BenchmarkSilenceDetection compares the incremental dirty-set silence
// check that RunUntilSilent now uses against the old behaviour of
// re-deciding CommSilent from scratch every step.
func BenchmarkSilenceDetection(b *testing.B) {
	n := 32
	if testing.Short() {
		n = 16
	}
	net, err := Generate("gnp", n, 7)
	if err != nil {
		b.Fatal(err)
	}
	sys, err := NewMIS(net)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("incremental", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			cfg := model.NewRandomConfig(sys, rng.New(uint64(i)+1))
			sim, err := model.NewSimulator(sys, cfg, sched.NewRandomSubset(uint64(i)+1), uint64(i)+1, nil)
			if err != nil {
				b.Fatal(err)
			}
			silent, err := sim.RunUntilSilent(2_000_000, 1)
			if err != nil {
				b.Fatal(err)
			}
			if !silent {
				b.Fatal("no silence")
			}
		}
	})
	b.Run("full-rescan", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			cfg := model.NewRandomConfig(sys, rng.New(uint64(i)+1))
			sim, err := model.NewSimulator(sys, cfg, sched.NewRandomSubset(uint64(i)+1), uint64(i)+1, nil)
			if err != nil {
				b.Fatal(err)
			}
			silent := false
			for step := 0; step < 2_000_000; step++ {
				s, err := model.CommSilent(sys, sim.Config())
				if err != nil {
					b.Fatal(err)
				}
				if s {
					silent = true
					break
				}
				sim.Step()
			}
			if !silent {
				b.Fatal("no silence")
			}
		}
	})
}

// BenchmarkRecorderStep measures the per-step observer cost of the
// bitset-backed trace recorder (the old recorder allocated three maps
// per step).
func BenchmarkRecorderStep(b *testing.B) {
	net, err := Generate("torus", 16, 3)
	if err != nil {
		b.Fatal(err)
	}
	sys, err := NewMIS(net)
	if err != nil {
		b.Fatal(err)
	}
	cfg := model.NewRandomConfig(sys, rng.New(1))
	rec := trace.NewRecorder(sys.N())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		selected := []int{i % sys.N()}
		rec.StepBegin(i, selected)
		model.ExecuteStep(sys, cfg, selected, i, nil, rec)
		rec.StepEnd(i, selected, false)
	}
}

// Engine micro-benchmarks.

func BenchmarkSimulatorStep(b *testing.B) {
	net, err := Generate("torus", 16, 3)
	if err != nil {
		b.Fatal(err)
	}
	sys, err := NewMIS(net)
	if err != nil {
		b.Fatal(err)
	}
	cfg := model.NewRandomConfig(sys, rng.New(1))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		model.ExecuteStep(sys, cfg, []int{i % sys.N()}, i, nil, nil)
	}
}

func BenchmarkCommSilent(b *testing.B) {
	net, err := Generate("torus", 16, 3)
	if err != nil {
		b.Fatal(err)
	}
	sys, err := NewMIS(net)
	if err != nil {
		b.Fatal(err)
	}
	cfg := model.NewRandomConfig(sys, rng.New(1))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := model.CommSilent(sys, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGreedyColoring(b *testing.B) {
	g := graph.RandomConnectedGNP(200, 0.05, rng.New(5))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		colors := graph.GreedyLocalColoring(g)
		if !graph.IsProperColoring(g, colors) {
			b.Fatal("improper coloring")
		}
	}
}

func BenchmarkConcurrentMIS(b *testing.B) {
	net, err := Generate("grid", 16, 9)
	if err != nil {
		b.Fatal(err)
	}
	sys, err := NewMIS(net)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := RunConcurrent(sys, ConcurrentOptions{Seed: uint64(i) + 1})
		if err != nil {
			b.Fatal(err)
		}
		if !res.Silent {
			b.Fatal("no silence")
		}
	}
}
